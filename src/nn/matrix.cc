#include "nn/matrix.h"

#include <cmath>
#include <cstring>
#include <ostream>

#include "nn/simd/dispatch.h"
#include "nn/simd/gemm.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cdbtune::nn {

namespace {

/// Multiply-add count below which parallel dispatch costs more than it
/// saves; ranges were picked so batch-32 layer matmuls (32x329x256 ≈ 2.7M
/// madds) parallelize while row-vector forwards stay inline.
constexpr size_t kParallelFlops = 256 * 1024;

/// Minimum rows per chunk when splitting an output across threads.
constexpr size_t kRowGrain = 4;

/// Batches smaller than this never pack B: the pack pass streams the whole
/// operand once, which only amortizes when enough output rows reuse it.
/// Row-vector recommendation forwards (n = 1) always take the raw-B path.
constexpr size_t kPackMinRows = 8;

/// O += A * B via the active tier's row kernel. The output must be
/// pre-initialized (zeros, or bias rows for the fused path). B is packed
/// into column strips when the tier packs and the shape is large enough to
/// amortize the pass — a decision that depends only on the shape and tier,
/// never the thread count, and packed/raw kernels accumulate in the same
/// order, so it cannot affect results.
void GemmInto(const double* a_data, const double* b_data, double* o_data,
              size_t n, size_t k, size_t m) {
  const simd::GemmKernels* kern = &simd::ActiveKernels();
  const bool parallel = n * k * m >= kParallelFlops;
  std::vector<double> packed;
  const double* bp = nullptr;
  if (kern->pack_width != 0 && n >= kPackMinRows && parallel) {
    packed.resize(simd::PackedBSize(kern->pack_width, k, m));
    if (!packed.empty()) {
      kern->pack_b(b_data, packed.data(), k, m);
      bp = packed.data();
    }
  }
  if (parallel) {
    util::ComputeContext::Get().ParallelFor(
        0, n, kRowGrain, [=](size_t r0, size_t r1) {
          kern->gemm_rows(a_data, b_data, bp, o_data, k, m, r0, r1);
        });
  } else {
    kern->gemm_rows(a_data, b_data, bp, o_data, k, m, 0, n);
  }
}

/// O += A^T * B via the active tier. Threads own disjoint p ranges (rows of
/// the output); each runs the full ascending-i accumulation itself.
void GemmTransposedAInto(const double* a_data, const double* b_data,
                         double* o_data, size_t n, size_t k, size_t m) {
  const simd::GemmKernels* kern = &simd::ActiveKernels();
  if (n * k * m >= kParallelFlops) {
    util::ComputeContext::Get().ParallelFor(
        0, k, kRowGrain, [=](size_t p0, size_t p1) {
          kern->gemm_ta_cols(a_data, b_data, o_data, n, k, m, p0, p1);
        });
  } else {
    kern->gemm_ta_cols(a_data, b_data, o_data, n, k, m, 0, k);
  }
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() > 0 ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    CDBTUNE_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, values.size());
  for (size_t i = 0; i < values.size(); ++i) m.data_[i] = values[i];
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, double lo, double hi,
                             util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, double mean,
                              double stddev, util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Gaussian(mean, stddev);
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  CDBTUNE_CHECK(r < rows_) << "row index " << r << " out of " << rows_;
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  CDBTUNE_CHECK(r < rows_) << "row index " << r << " out of " << rows_;
  CDBTUNE_CHECK(values.size() == cols_) << "row width mismatch";
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

Matrix Matrix::MatMul(const Matrix& other) const {
  CDBTUNE_CHECK(cols_ == other.rows_)
      << "matmul shape mismatch: " << rows_ << "x" << cols_ << " * "
      << other.rows_ << "x" << other.cols_;
  Matrix out(rows_, other.cols_);
  GemmInto(data_.data(), other.data_.data(), out.data_.data(), rows_, cols_,
           other.cols_);
  return out;
}

Matrix Matrix::MatMulBias(const Matrix& other, const Matrix& bias) const {
  CDBTUNE_CHECK(cols_ == other.rows_)
      << "matmul shape mismatch: " << rows_ << "x" << cols_ << " * "
      << other.rows_ << "x" << other.cols_;
  CDBTUNE_CHECK(bias.rows_ == 1 && bias.cols_ == other.cols_)
      << "bias must be 1x" << other.cols_;
  Matrix out(rows_, other.cols_);
  // Seed every output row with the bias, then accumulate the product on
  // top: one pass over the output instead of matmul + broadcast-add.
  const size_t m = other.cols_;
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(out.data_.data() + r * m, bias.data_.data(),
                m * sizeof(double));
  }
  GemmInto(data_.data(), other.data_.data(), out.data_.data(), rows_, cols_,
           m);
  return out;
}

Matrix Matrix::MatMulTransposedA(const Matrix& other) const {
  CDBTUNE_CHECK(rows_ == other.rows_)
      << "matmul^T_A shape mismatch: (" << rows_ << "x" << cols_ << ")^T * "
      << other.rows_ << "x" << other.cols_;
  Matrix out(cols_, other.cols_);
  GemmTransposedAInto(data_.data(), other.data_.data(), out.data_.data(),
                      rows_, cols_, other.cols_);
  return out;
}

void Matrix::MatMulTransposedAAccumulate(const Matrix& other,
                                         Matrix* acc) const {
  CDBTUNE_CHECK(rows_ == other.rows_)
      << "matmul^T_A shape mismatch: (" << rows_ << "x" << cols_ << ")^T * "
      << other.rows_ << "x" << other.cols_;
  CDBTUNE_CHECK(acc->rows_ == cols_ && acc->cols_ == other.cols_)
      << "accumulator must be " << cols_ << "x" << other.cols_;
  GemmTransposedAInto(data_.data(), other.data_.data(), acc->data_.data(),
                      rows_, cols_, other.cols_);
}

Matrix Matrix::MatMulTransposedB(const Matrix& other) const {
  CDBTUNE_CHECK(cols_ == other.cols_)
      << "matmul^T_B shape mismatch: " << rows_ << "x" << cols_ << " * ("
      << other.rows_ << "x" << other.cols_ << ")^T";
  Matrix out(rows_, other.rows_);
  const size_t n = rows_, k = cols_, m = other.rows_;
  const double* a_data = data_.data();
  const double* b_data = other.data_.data();
  double* o_data = out.data_.data();
  const simd::GemmKernels* kern = &simd::ActiveKernels();
  if (n * k * m >= kParallelFlops) {
    util::ComputeContext::Get().ParallelFor(
        0, n, kRowGrain, [=](size_t r0, size_t r1) {
          kern->gemm_tb_rows(a_data, b_data, o_data, k, m, r0, r1);
        });
  } else {
    kern->gemm_tb_rows(a_data, b_data, o_data, k, m, 0, n);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.data_[c * rows_ + r] = at(r, c);
  }
  return out;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  CDBTUNE_CHECK(SameShape(other)) << "add shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  CDBTUNE_CHECK(SameShape(other)) << "sub shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  CDBTUNE_CHECK(SameShape(other)) << "hadamard shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix& Matrix::AddScalar(double value) {
  for (double& v : data_) v += value;
  return *this;
}

Matrix& Matrix::AddRowBroadcast(const Matrix& row) {
  CDBTUNE_CHECK(row.rows_ == 1 && row.cols_ == cols_)
      << "broadcast row must be 1x" << cols_;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += row.data_[c];
  }
  return *this;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.data_[c] += data_[r * cols_ + c];
  }
  return out;
}

Matrix Matrix::MeanRows() const {
  Matrix out = SumRows();
  if (rows_ > 0) out.Scale(1.0 / static_cast<double>(rows_));
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::MeanSquare() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s / static_cast<double>(data_.size());
}

double Matrix::AbsMax() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  CDBTUNE_CHECK(rows_ == other.rows_) << "concat row mismatch";
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (size_t c = 0; c < other.cols_; ++c) {
      out.at(r, cols_ + c) = other.at(r, c);
    }
  }
  return out;
}

void Matrix::SplitCols(size_t split, Matrix* left, Matrix* right) const {
  CDBTUNE_CHECK(split <= cols_) << "split beyond width";
  *left = Matrix(rows_, split);
  *right = Matrix(rows_, cols_ - split);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < split; ++c) left->at(r, c) = at(r, c);
    for (size_t c = split; c < cols_; ++c) right->at(r, c - split) = at(r, c);
  }
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows_ << "x" << m.cols_ << ")";
  if (m.size() <= 64) {
    os << " [";
    for (size_t r = 0; r < m.rows_; ++r) {
      os << (r == 0 ? "[" : ", [");
      for (size_t c = 0; c < m.cols_; ++c) {
        os << (c == 0 ? "" : ", ") << m.at(r, c);
      }
      os << "]";
    }
    os << "]";
  }
  return os;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs.AddInPlace(rhs);
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs.SubInPlace(rhs);
  return lhs;
}

Matrix operator*(Matrix lhs, double factor) {
  lhs.Scale(factor);
  return lhs;
}

}  // namespace cdbtune::nn
