#include "engine/disk_manager.h"

#include "util/check.h"

namespace cdbtune::engine {

DiskTimings TimingsFor(env::DiskType type) {
  switch (type) {
    case env::DiskType::kHdd:
      return {8'000'000, 8'000'000, 12'000'000, 110'000};
    case env::DiskType::kSsd:
      return {120'000, 80'000, 400'000, 33'000};
    case env::DiskType::kNvm:
      return {20'000, 20'000, 50'000, 8'000};
  }
  return {120'000, 80'000, 400'000, 33'000};
}

DiskManager::DiskManager(VirtualClock* clock, env::DiskType type,
                         uint64_t capacity_bytes)
    : clock_(clock), timings_(TimingsFor(type)), capacity_bytes_(capacity_bytes) {
  CDBTUNE_CHECK(clock_ != nullptr);
}

uint64_t DiskManager::used_bytes() const {
  return static_cast<uint64_t>(pages_.size()) * kPageSize + log_reserved_bytes_;
}

util::StatusOr<PageId> DiskManager::AllocatePage() {
  if (used_bytes() + kPageSize > capacity_bytes_) {
    return util::Status::OutOfRange("disk full: cannot allocate page");
  }
  pages_.emplace_back(kPageSize, 0);
  return static_cast<PageId>(pages_.size() - 1);
}

util::Status DiskManager::ReadPage(PageId page_id, char* out) {
  if (page_id >= pages_.size()) {
    return util::Status::NotFound("read of unallocated page " +
                                  std::to_string(page_id));
  }
  bool sequential =
      last_read_page_ != kInvalidPageId && page_id == last_read_page_ + 1;
  clock_->Advance(sequential ? timings_.sequential_read_ns
                             : timings_.random_read_ns);
  last_read_page_ = page_id;
  ++reads_issued_;
  std::memcpy(out, pages_[page_id].data(), kPageSize);
  return util::Status::Ok();
}

util::Status DiskManager::WritePage(PageId page_id, const char* data) {
  if (page_id >= pages_.size()) {
    return util::Status::NotFound("write of unallocated page " +
                                  std::to_string(page_id));
  }
  clock_->Advance(timings_.random_write_ns);
  ++writes_issued_;
  std::memcpy(pages_[page_id].data(), data, kPageSize);
  return util::Status::Ok();
}

util::Status DiskManager::ReserveLogBytes(uint64_t bytes) {
  if (used_bytes() + bytes > capacity_bytes_) {
    return util::Status::OutOfRange(
        "disk full: redo log allocation does not fit");
  }
  log_reserved_bytes_ += bytes;
  return util::Status::Ok();
}

void DiskManager::ReleaseLogBytes(uint64_t bytes) {
  CDBTUNE_CHECK(bytes <= log_reserved_bytes_) << "releasing unreserved log";
  log_reserved_bytes_ -= bytes;
}

void DiskManager::MarkCheckpoint() { checkpoint_pages_ = pages_; }

void DiskManager::RevertToCheckpoint() {
  pages_ = checkpoint_pages_;
  last_read_page_ = kInvalidPageId;
}

void DiskManager::Fsync() {
  clock_->Advance(timings_.fsync_ns);
  ++fsyncs_issued_;
}

void DiskManager::AppendLog(uint64_t bytes) {
  // Sequential append: charge proportional to 4K blocks at sequential cost.
  uint64_t blocks = (bytes + 4095) / 4096;
  clock_->Advance(blocks * (timings_.sequential_read_ns / 2 + 1));
}

}  // namespace cdbtune::engine
