#ifndef CDBTUNE_NN_MATRIX_H_
#define CDBTUNE_NN_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "util/random.h"

namespace cdbtune::nn {

/// Dense row-major 2D matrix of doubles — the only tensor type the NN
/// library needs. A batch of N state vectors of dimension D is an N x D
/// matrix; a Linear layer's weight is in_features x out_features.
///
/// Matmul entry points dispatch to the SIMD microkernel tier selected at
/// runtime (nn/simd/dispatch.h: scalar / AVX2 / AVX-512, overridable via
/// CDBTUNE_SIMD) and split row ranges onto util::ComputeContext's pool
/// above a flop threshold. Each output element is accumulated in a fixed
/// order by exactly one thread, and every tier implements the same
/// reference accumulation semantics (nn/simd/gemm.h), so results are
/// bitwise identical at any thread count AND any dispatch tier (the
/// determinism contract in DESIGN.md "Parallelism & kernels").
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m = {{1, 2}, {3, 4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Wraps a single vector as a 1 x N row matrix.
  static Matrix RowVector(const std::vector<double>& values);

  /// Fills with IID draws. Used for weight init (paper Table 4: weights
  /// Uniform(-0.1, 0.1), learnable critic params Normal(0, 0.01)).
  static Matrix RandomUniform(size_t rows, size_t cols, double lo, double hi,
                              util::Rng& rng);
  static Matrix RandomGaussian(size_t rows, size_t cols, double mean,
                               double stddev, util::Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Extracts row `r` as a plain vector (e.g., one action from a batch).
  std::vector<double> Row(size_t r) const;
  void SetRow(size_t r, const std::vector<double>& values);

  // --- Linear algebra ---------------------------------------------------

  /// Matrix product this(NxK) * other(KxM) -> NxM.
  Matrix MatMul(const Matrix& other) const;

  /// Fused this(NxK) * other(KxM) + bias(1xM) broadcast to every row:
  /// the Linear-forward path. Seeds the output with the bias and
  /// accumulates the product on top, saving a full output sweep versus
  /// MatMul + AddRowBroadcast.
  Matrix MatMulBias(const Matrix& other, const Matrix& bias) const;

  /// Fused this^T * other: this(NxK), other(NxM) -> KxM, without
  /// materializing the transpose. Backprop weight gradients
  /// (input^T * grad_output) hit this kernel every minibatch.
  Matrix MatMulTransposedA(const Matrix& other) const;

  /// MatMulTransposedA accumulated into an existing KxM matrix (`*acc +=
  /// this^T * other`): the weight-gradient path, which adds into the
  /// parameter's grad buffer without a temporary.
  void MatMulTransposedAAccumulate(const Matrix& other, Matrix* acc) const;

  /// Fused this * other^T: this(NxK), other(MxK) -> NxM. Each output is a
  /// dot product of two contiguous rows — the input-gradient kernel
  /// (grad_output * weight^T).
  Matrix MatMulTransposedB(const Matrix& other) const;

  Matrix Transposed() const;

  // --- Elementwise ------------------------------------------------------

  Matrix& AddInPlace(const Matrix& other);
  Matrix& SubInPlace(const Matrix& other);
  Matrix& MulInPlace(const Matrix& other);  // Hadamard product.
  Matrix& Scale(double factor);
  Matrix& AddScalar(double value);

  /// Adds a 1 x cols row (bias broadcast) to every row.
  Matrix& AddRowBroadcast(const Matrix& row);

  /// Returns a new matrix with `fn` applied to every element. Templated so
  /// activation lambdas inline into the loop instead of paying a
  /// std::function indirection per element.
  template <typename Fn>
  Matrix Map(Fn&& fn) const {
    Matrix out(rows_, cols_);
    const double* src = data_.data();
    double* dst = out.data_.data();
    const size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) dst[i] = fn(src[i]);
    return out;
  }

  // --- Reductions -------------------------------------------------------

  /// Column sums as a 1 x cols matrix (bias gradients).
  Matrix SumRows() const;
  /// Column means as a 1 x cols matrix.
  Matrix MeanRows() const;
  double Sum() const;
  /// Mean of squared elements; the core of the MSE loss.
  double MeanSquare() const;
  /// Largest |element|; used by gradient-explosion guards in tests.
  double AbsMax() const;

  // --- Structure --------------------------------------------------------

  /// Horizontal concatenation [this | other]; rows must match. Used by the
  /// DDPG critic to merge state and action trunks (Table 5 step 2).
  Matrix ConcatCols(const Matrix& other) const;
  /// Splits columns [0, split) and [split, cols) into two matrices.
  void SplitCols(size_t split, Matrix* left, Matrix* right) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Out-of-place convenience arithmetic.
Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double factor);

}  // namespace cdbtune::nn

#endif  // CDBTUNE_NN_MATRIX_H_
