#ifndef CDBTUNE_TUNER_REWARD_H_
#define CDBTUNE_TUNER_REWARD_H_

#include <string>

namespace cdbtune::tuner {

/// External performance at one tuning step.
struct PerfPoint {
  double throughput = 0.0;   // txn/sec, higher is better.
  double latency = 0.0;      // 99th-percentile ms, lower is better.
};

/// The reward designs compared in Appendix C.1.1.
enum class RewardFunctionType {
  /// The paper's design (Section 4.2): blends performance change vs. the
  /// previous step and vs. the initial configuration, and clamps the reward
  /// to zero when overall progress is positive but the last step regressed.
  kCdbTune,
  /// RF-A: compares only against the previous step.
  kPrevOnly,
  /// RF-B: compares only against the initial settings.
  kInitialOnly,
  /// RF-C: like CDBTune but without the zero-clamp rule.
  kNoClamp,
};

const char* RewardFunctionTypeName(RewardFunctionType type);

/// Computes the scalar reward of Eqs. (4)-(7).
///
/// Throughput and latency each produce a sub-reward via Eq. (6); the total
/// is C_T * r_T + C_L * r_L with C_T + C_L = 1 (Eq. 7, user-settable per
/// Appendix C.1.2). A crashed instance yields `crash_reward()` regardless
/// of type (Section 5.2.3: "give a large negative reward (e.g., -100) for
/// punishment").
class RewardFunction {
 public:
  explicit RewardFunction(RewardFunctionType type = RewardFunctionType::kCdbTune,
                          double throughput_coeff = 0.5,
                          double latency_coeff = 0.5);

  /// Fixes the t=0 baseline (performance under the initial configuration).
  void SetInitial(const PerfPoint& initial);
  const PerfPoint& initial() const { return initial_; }
  bool has_initial() const { return has_initial_; }

  /// Reward for moving from `prev` (time t-1) to `curr` (time t).
  double Compute(const PerfPoint& prev, const PerfPoint& curr) const;

  double crash_reward() const { return -100.0; }

  RewardFunctionType type() const { return type_; }
  double throughput_coeff() const { return ct_; }
  double latency_coeff() const { return cl_; }

  /// Eq. (6) for one metric, exposed for direct unit testing:
  /// `delta0` = rate of change vs. initial, `delta_prev` = vs. previous.
  static double MetricReward(double delta0, double delta_prev,
                             bool clamp_regression);

 private:
  RewardFunctionType type_;
  double ct_;
  double cl_;
  PerfPoint initial_;
  bool has_initial_ = false;
};

}  // namespace cdbtune::tuner

#endif  // CDBTUNE_TUNER_REWARD_H_
