#include "rl/dqn.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cdbtune::rl {

using nn::Matrix;

DqnAgent::DqnAgent(DqnOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      q_net_(BuildNet()),
      target_net_(BuildNet()) {
  target_net_.CopyParamsFrom(q_net_);
  opt_ = std::make_unique<nn::Adam>(q_net_.Params(), options_.learning_rate);
  replay_ = std::make_unique<UniformReplay>(options_.replay_capacity);
}

nn::Sequential DqnAgent::BuildNet() {
  nn::Sequential net;
  size_t in = options_.state_dim;
  for (size_t width : options_.hidden) {
    net.Add(std::make_unique<nn::Linear>(in, width, rng_,
                                         nn::InitScheme::kXavierUniform));
    net.Add(std::make_unique<nn::Relu>());
    in = width;
  }
  net.Add(std::make_unique<nn::Linear>(in, num_actions(), rng_,
                                       nn::InitScheme::kXavierUniform));
  return net;
}

size_t DqnAgent::SelectAction(const std::vector<double>& state, bool explore) {
  if (explore && rng_.Bernoulli(options_.epsilon)) {
    return static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(num_actions()) - 1));
  }
  Matrix q = q_net_.Forward(Matrix::RowVector(state), /*training=*/false);
  size_t best = 0;
  for (size_t a = 1; a < num_actions(); ++a) {
    if (q.at(0, a) > q.at(0, best)) best = a;
  }
  return best;
}

std::vector<double> DqnAgent::ApplyAction(const std::vector<double>& knobs,
                                          size_t action) const {
  CDBTUNE_CHECK(knobs.size() == options_.num_knobs) << "knob count mismatch";
  CDBTUNE_CHECK(action < num_actions()) << "action index out of range";
  std::vector<double> out = knobs;
  if (action == 2 * options_.num_knobs) return out;  // no-op
  size_t knob = action / 2;
  double delta = (action % 2 == 0) ? options_.knob_step : -options_.knob_step;
  out[knob] = std::clamp(out[knob] + delta, 0.0, 1.0);
  return out;
}

void DqnAgent::Observe(Transition transition) {
  CDBTUNE_CHECK(transition.action.size() == 1)
      << "DQN transitions carry a single action index";
  replay_->Add(std::move(transition));
}

double DqnAgent::TrainStep() {
  const size_t batch = options_.batch_size;
  if (replay_->size() < batch) return 0.0;
  SampleBatch sample = replay_->Sample(batch, rng_);

  Matrix states(batch, options_.state_dim);
  Matrix next_states(batch, options_.state_dim);
  for (size_t i = 0; i < batch; ++i) {
    states.SetRow(i, sample.items[i]->state);
    next_states.SetRow(i, sample.items[i]->next_state);
  }

  Matrix next_q = target_net_.Forward(next_states, /*training=*/false);
  q_net_.ZeroGrad();
  Matrix q = q_net_.Forward(states, /*training=*/true);

  // Only the taken action's Q receives gradient.
  Matrix grad(batch, num_actions());
  double loss = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    const Transition& t = *sample.items[i];
    size_t a = static_cast<size_t>(t.action[0]);
    double max_next = next_q.at(i, 0);
    for (size_t j = 1; j < num_actions(); ++j) {
      max_next = std::max(max_next, next_q.at(i, j));
    }
    double target = t.reward + (t.terminal ? 0.0 : options_.gamma * max_next);
    double diff = q.at(i, a) - target;
    loss += diff * diff;
    grad.at(i, a) = 2.0 * diff / static_cast<double>(batch);
  }
  loss /= static_cast<double>(batch);
  q_net_.Backward(grad);
  opt_->ClipGradNorm(5.0);
  opt_->Step();

  if (++steps_ % options_.target_sync_every == 0) {
    target_net_.CopyParamsFrom(q_net_);
  }
  return loss;
}

void DqnAgent::DecayEpsilon() {
  options_.epsilon =
      std::max(options_.epsilon_min, options_.epsilon * options_.epsilon_decay);
}

}  // namespace cdbtune::rl
