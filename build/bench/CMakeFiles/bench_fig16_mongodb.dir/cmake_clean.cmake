file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_mongodb.dir/bench_fig16_mongodb.cc.o"
  "CMakeFiles/bench_fig16_mongodb.dir/bench_fig16_mongodb.cc.o.d"
  "bench_fig16_mongodb"
  "bench_fig16_mongodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_mongodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
