// Lint fixture twin of bad_pointer_order.cc: key by stable ids, compare
// pointers only for equality (stable within a process), and one annotated
// two-lock ordering proving the allow() form works. Never compiled;
// tools/lint_selftest.py asserts zero active findings.

#include <cstdint>
#include <map>
#include <set>

namespace cdbtune::server {

struct Session;

struct SessionIndex {
  std::map<uint64_t, Session*> session_by_id;  // pointer as VALUE is fine
  std::set<uint64_t> active_ids;
};

// Equality of pointers is stable; only relational order is not.
bool SameSession(const Session* a, const Session* b) { return a == b; }

bool LockPairOrdered(const Session& a, const Session& b) {
  // lint: allow(pointer-order) — two-lock acquisition ordering: any strict
  // total order prevents the deadlock, it only has to be consistent within
  // one process lifetime, never across runs.
  return &a < &b;
}

}  // namespace cdbtune::server
