file(REMOVE_RECURSE
  "CMakeFiles/cdbtune_util.dir/logging.cc.o"
  "CMakeFiles/cdbtune_util.dir/logging.cc.o.d"
  "CMakeFiles/cdbtune_util.dir/random.cc.o"
  "CMakeFiles/cdbtune_util.dir/random.cc.o.d"
  "CMakeFiles/cdbtune_util.dir/stats.cc.o"
  "CMakeFiles/cdbtune_util.dir/stats.cc.o.d"
  "CMakeFiles/cdbtune_util.dir/status.cc.o"
  "CMakeFiles/cdbtune_util.dir/status.cc.o.d"
  "CMakeFiles/cdbtune_util.dir/table_printer.cc.o"
  "CMakeFiles/cdbtune_util.dir/table_printer.cc.o.d"
  "libcdbtune_util.a"
  "libcdbtune_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdbtune_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
