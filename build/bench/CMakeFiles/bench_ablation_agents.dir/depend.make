# Empty dependencies file for bench_ablation_agents.
# This may be replaced when dependencies are built.
