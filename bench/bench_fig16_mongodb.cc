// Reproduces Figure 16 (Appendix C.3): YCSB on a MongoDB/WiredTiger-flavored
// engine with 232 tunable knobs, instance CDB-E, comparing CDBTune against
// the MongoDB defaults, the CDB template, BestConfig, the DBA and OtterTune.
//
// Expected shape (paper): CDBTune wins on both throughput and latency —
// the method carries over to a document store unchanged because nothing in
// the pipeline is MySQL-specific.
#include "bench_common.h"

int main() {
  using namespace cdbtune;
  auto spec = workload::Ycsb();
  bench::Budgets budgets;
  budgets.cdbtune_offline_steps = 600;
  budgets.seed = 103;

  std::vector<bench::ContenderResult> rows = bench::RunStandardContenders(
      [] { return env::SimulatedCdb::Mongo(env::CdbE(), 103); }, spec,
      budgets);
  bench::PrintContenders(
      "Figure 16: YCSB on MongoDB-flavored engine (232 knobs, CDB-E)", rows);
  return 0;
}
