#!/usr/bin/env python3
"""Wire-schema extraction analyzer: prove writer/reader symmetry and gate
checkpoint/protocol drift.

Built on the token/scope-aware lexer from tools/analyze.py. For every
serialization site in src/ this tool statically extracts the ordered field
sequence of each writer/reader pair — `AppendChunks`/`RestoreFromChunks`,
every `SaveBinary`/`LoadBinary`/`RestoreBinary` helper they reach, and the
src/server/net/ frame encoder/decoder — following helper calls one level
deep (deeper levels are themselves extracted pairs) and modeling loops over
aggregates as `repeat{...}` groups and conditional fields as `opt{...}`.

It then
  (a) proves writer/reader *symmetry*: every field written is read with the
      same wire type, in the same order, under the same loop/optional
      structure, and every chunk written under a `writer.Add(name, ...)` is
      decoded by a matching `file.Decode(name, ...)`; and
  (b) emits a canonical machine-readable manifest per format, committed as
      src/persist/SCHEMA.lock (checkpoint container) and
      src/server/net/WIRE.lock (TCP frame header).

Rules
-----
schema-asymmetry     A written field/chunk is read with a different type,
                     order, count structure — or never read at all.
schema-unpaired      A writer (or reader) participant with no counterpart:
                     bytes that nothing can decode, or a decode of a chunk
                     nothing writes.
raw-schema           `AppendRaw` of a payload that is not provably a byte
                     buffer (`x.data(), x.size()` or a string literal):
                     whole-object raw appends hide fields from the schema
                     and serialize padding bytes.
schema-unextractable A serialization site too dynamic for static
                     extraction (unknown method on an Encoder/Decoder,
                     chunk payload that is not a local Encoder, ...).
                     Refactor onto the analyzable idioms or annotate.

Modes
-----
default   print active findings (exit 1 if any)
--check   findings + diff the extracted manifests against the committed
          lock files; unreviewed drift fails (CI gate)
--bless   regenerate the lock files after an intentional, version-bumped
          format change (refuses while findings are active)
--json    machine-readable findings (same schema as lint.py/analyze.py)

Suppressions use the same annotation grammar as lint.py/analyze.py but a
distinct `schema:` prefix so the tools never capture each other's allows:

    writer.Add(name, payload);  // schema: allow(schema-unextractable) — why

`tools/lint.py --report-suppressions` audits these for staleness alongside
the lint/analyze annotations. Exit status 0 when clean, 1 otherwise.
"""

from __future__ import annotations

import argparse
import difflib
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field as dc_field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import analyze  # noqa: E402
from analyze import (  # noqa: E402
    AnalysisResult, Annotation, Finding, SuppressionIndex, Token,
    match_paren, preprocess, rel_str,
)

REPO_ROOT = analyze.REPO_ROOT

RULES = frozenset({
    "schema-asymmetry",
    "schema-unpaired",
    "raw-schema",
    "schema-unextractable",
})

SCHEMA_ALLOW_RE = re.compile(
    r"schema:\s*allow\(([\w\-, ]+)\)(\s*[—–-]\s*\S.*)?")
SCHEMA_ALLOW_FILE_RE = re.compile(
    r"schema:\s*allow-file\(([\w\-, ]+)\)(\s*[—–-]\s*\S.*)?")

SCHEMA_LOCK_REL = Path("src/persist/SCHEMA.lock")
WIRE_LOCK_REL = Path("src/server/net/WIRE.lock")

# persist::Encoder / Decoder wire primitives -> canonical wire type names.
WRITE_TYPES = {
    "WriteU8": "u8", "WriteBool": "bool", "WriteU32": "u32",
    "WriteU64": "u64", "WriteI64": "i64", "WriteDouble": "f64",
    "WriteString": "str", "WriteDoubleVec": "f64vec",
}
READ_TYPES = {
    "ReadU8": "u8", "ReadBool": "bool", "ReadU32": "u32",
    "ReadU64": "u64", "ReadI64": "i64", "ReadDouble": "f64",
    "ReadString": "str", "ReadDoubleVec": "f64vec",
}

# Methods on role objects that move no schema bytes (or whose bytes are the
# container framing, owned by src/persist itself).
IGNORED_MEMBERS = {
    "Release", "bytes", "status", "Finish", "Done", "remaining", "position",
    "ok", "reserve", "Has", "Names", "size", "data", "empty", "error",
}

ROLE_TYPES = {"Encoder": "enc", "Decoder": "dec",
              "ChunkWriter": "writer", "ChunkFile": "file"}
WRITER_ROLES = {"enc", "writer"}
READER_ROLES = {"dec", "file"}

# Identifiers that look like calls but are control flow / operators.
CALL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "static_assert", "decltype", "operator", "new", "delete", "throw", "do",
    "else", "case", "default", "defined", "assert", "alignas", "noexcept",
}

# Writer helper name -> the reader names that pair with it. Beyond these,
# Save->Load / Save->Restore / Append->Restore single substitutions apply.
SPECIAL_PAIRS = {
    "AppendChunks": {"RestoreFromChunks"},
    "AppendCheckpointChunks": {"RestoreCheckpoint"},
}


def scan_schema_annotations(path: Path, raw_lines: list[str]
                            ) -> list[Annotation]:
    """`// schema: allow(rule) — reason` annotations, same grammar as
    lint.py/analyze.py but namespaced so the tools stay independent."""
    out: list[Annotation] = []
    for idx, line in enumerate(raw_lines):
        for regex, kind in ((SCHEMA_ALLOW_RE, "allow"),
                            (SCHEMA_ALLOW_FILE_RE, "allow-file")):
            match = regex.search(line)
            if match and not (kind == "allow"
                              and SCHEMA_ALLOW_FILE_RE.search(line)):
                out.append(Annotation(
                    path=path, line=idx + 1, kind=kind,
                    rules=tuple(r.strip() for r in match.group(1).split(",")
                                if r.strip()),
                    has_reason=bool(match.group(2)),
                    text=line.strip()))
    return out


# ---------------------------------------------------------------------------
# Op model
# ---------------------------------------------------------------------------


@dataclass
class Op:
    """One element of an extracted wire schema.

    kind: "field"  — a primitive (type = wire type, name = argument text)
          "sub"    — a helper call that serializes through the role object
                     (type = callee name, name = receiver chain)
          "raw"    — an AppendRaw of a byte buffer
          "repeat" — a loop body (body = ops per iteration)
          "opt"    — a conditionally present group (body = ops)
          "chunk"  — writer.Add(name, payload): type = name pattern,
                     body = the payload Encoder's ops
          "decode" — file.Decode(name, lambda): type = name pattern,
                     body = the lambda's Decoder ops
    """
    kind: str
    line: int
    type: str = ""
    name: str = ""
    body: list["Op"] = dc_field(default_factory=list)


def render_toks(toks: list[Token]) -> str:
    """Compact textual rendering of an expression for messages/manifests:
    strips a leading address-of, unwraps static_cast<T>(x) to x, normalizes
    `->` to `.`, drops whitespace."""
    ts = list(toks)
    while ts and ts[0].kind == "punct" and ts[0].text == "&":
        ts = ts[1:]
    # static_cast< T >( X ) -> X  (repeatedly, outermost first)
    changed = True
    while changed and ts:
        changed = False
        if ts[0].kind == "id" and ts[0].text.endswith("_cast"):
            lt = 1
            if lt < len(ts) and ts[lt].text == "<":
                depth = 0
                j = lt
                while j < len(ts):
                    if ts[j].text == "<":
                        depth += 1
                    elif ts[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif ts[j].text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    j += 1
                if j + 1 < len(ts) and ts[j + 1].text == "(":
                    close = match_paren(ts, j + 1)
                    if close == len(ts) - 1:
                        ts = ts[j + 2:close]
                        changed = True
    out = []
    for t in ts:
        out.append("." if (t.kind == "punct" and t.text == "->") else t.text)
    return "".join(out)


def render_op(op: Op):
    """Canonical JSON-ready rendering (no line numbers: lock files must not
    churn when code moves)."""
    if op.kind == "field":
        return f"{op.type} {op.name}" if op.name else op.type
    if op.kind == "sub":
        return f"sub {op.type}"
    if op.kind == "raw":
        return f"raw {op.name}" if op.name else "raw"
    if op.kind == "repeat":
        return {"repeat": [render_op(o) for o in op.body]}
    if op.kind == "opt":
        return {"opt": [render_op(o) for o in op.body]}
    if op.kind in ("chunk", "decode"):
        return {op.kind: op.type, "ops": [render_op(o) for o in op.body]}
    raise AssertionError(op.kind)


def describe_op(op: Op) -> str:
    r = render_op(op)
    return r if isinstance(r, str) else json.dumps(r, sort_keys=True)


# ---------------------------------------------------------------------------
# Function discovery
# ---------------------------------------------------------------------------


@dataclass
class Func:
    path: Path
    rel: Path
    cls: str
    name: str
    line: int
    params: list[Token]
    body: list[Token]
    # Filled by extraction:
    out_w: list[Op] = dc_field(default_factory=list)
    out_r: list[Op] = dc_field(default_factory=list)
    has_w_param: bool = False
    has_r_param: bool = False

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


def find_functions(tokens: list[Token]) -> list[Func]:
    """Function *definitions* in a token stream: `name(...) ... {body}`.
    Namespace/class braces are transparent; control keywords, declarations
    (`;` after the parens) and macro invocations-as-statements are skipped.
    cls is taken from a `Class::name` qualification when present."""
    out: list[Func] = []
    n = len(tokens)
    i = 0
    while i < n - 1:
        t = tokens[i]
        if t.kind != "id" or t.text in CALL_KEYWORDS or \
                tokens[i + 1].kind != "punct" or tokens[i + 1].text != "(":
            i += 1
            continue
        if i > 0 and tokens[i - 1].kind == "punct" and \
                tokens[i - 1].text == "~":
            i += 1
            continue
        close = match_paren(tokens, i + 1)
        if close < 0:
            i += 1
            continue
        # After the param list: qualifiers, then either `{` (definition,
        # possibly after a ctor-init list introduced by `:`), or something
        # else (declaration / call expression) — skip those.
        j = close + 1
        while j < n and tokens[j].kind == "id" and \
                tokens[j].text in ("const", "noexcept", "override", "final"):
            j += 1
        body_open = -1
        if j < n and tokens[j].kind == "punct" and tokens[j].text == "{":
            body_open = j
        elif j < n and tokens[j].kind == "punct" and tokens[j].text == ":":
            depth = 0
            k = j + 1
            while k < n:
                tk = tokens[k]
                if tk.kind == "punct":
                    if tk.text in ("(", "["):
                        depth += 1
                    elif tk.text in (")", "]"):
                        depth -= 1
                    elif tk.text == "{" and depth == 0:
                        body_open = k
                        break
                    elif tk.text == ";" and depth == 0:
                        break
                k += 1
        if body_open < 0:
            i = close + 1
            continue
        body_close = match_paren(tokens, body_open, "{", "}")
        if body_close < 0:
            i = close + 1
            continue
        cls = ""
        if i >= 2 and tokens[i - 1].kind == "punct" and \
                tokens[i - 1].text == "::" and tokens[i - 2].kind == "id":
            cls = tokens[i - 2].text
        out.append(Func(
            path=Path(), rel=Path(), cls=cls, name=t.text, line=t.line,
            params=tokens[i + 2:close],
            body=tokens[body_open + 1:body_close]))
        i = body_close + 1
    return out


def split_top(toks: list[Token], sep: str) -> list[list[Token]]:
    """Splits at depth-0 occurrences of `sep` (tracking (), [], {})."""
    parts: list[list[Token]] = [[]]
    depth = 0
    for t in toks:
        if t.kind == "punct":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == sep and depth == 0:
                parts.append([])
                continue
        parts[-1].append(t)
    return parts


def role_params(params: list[Token]) -> dict[str, str]:
    """`persist::Encoder& enc, ...` -> {"enc": "enc", ...}."""
    roles: dict[str, str] = {}
    for group in split_top(params, ","):
        for idx, t in enumerate(group):
            if t.kind == "id" and t.text in ROLE_TYPES:
                j = idx + 1
                while j < len(group) and group[j].kind == "punct" and \
                        group[j].text in ("&", "*", "&&"):
                    j += 1
                if j < len(group) and group[j].kind == "id":
                    roles[group[j].text] = ROLE_TYPES[t.text]
                break
    return roles


def string_literal(tok: Token) -> str | None:
    if tok.kind != "str":
        return None
    text = tok.text
    if text.startswith('R"'):
        m = re.match(r'R"([^(]*)\((.*)\)\1"$', text)
        return m.group(2) if m else ""
    return text[1:-1] if len(text) >= 2 else ""


# ---------------------------------------------------------------------------
# Body extraction
# ---------------------------------------------------------------------------


class Ctx:
    """Extraction context for one function body (and its nested scopes).
    `roles` maps variable name -> role kind; `sinks` maps each role variable
    to the op list its traffic lands in (function-level out_w/out_r for
    params and container roles, a pending buffer for local Encoders that a
    writer.Add() will consume)."""

    def __init__(self, roles: dict[str, str], sinks: dict[str, list[Op]],
                 lambdas: dict[str, tuple[list[str], list[Token]]],
                 strvars: dict[str, str]):
        self.roles = roles
        self.sinks = sinks
        self.lambdas = lambdas
        self.strvars = strvars

    def child_fresh(self) -> "Ctx":
        """Same roles, fresh (empty) sinks — used for loop/branch bodies so
        their ops can be wrapped (repeat/opt) before merging."""
        return Ctx(dict(self.roles), {v: [] for v in self.sinks},
                   self.lambdas, self.strvars)

    def merge_wrapped(self, child: "Ctx", kind: str, line: int) -> None:
        for var, ops in child.sinks.items():
            if not ops:
                continue
            target = self.sinks.get(var)
            if target is None:
                continue  # role declared inside the scope; already drained
            target.append(Op(kind, line, body=ops))

    def merge_flat(self, child: "Ctx") -> None:
        for var, ops in child.sinks.items():
            if not ops:
                continue
            target = self.sinks.get(var)
            if target is not None:
                target.extend(ops)


class Extractor:
    """Extracts ordered wire ops from one file's function bodies."""

    def __init__(self, func: Func, reporter) -> None:
        self.func = func
        self.report = reporter  # fn(line, rule, message)

    def run(self) -> None:
        f = self.func
        roles = role_params(f.params)
        sinks: dict[str, list[Op]] = {}
        for var, role in roles.items():
            if role in WRITER_ROLES:
                sinks[var] = f.out_w
                f.has_w_param = True
            else:
                sinks[var] = f.out_r
                f.has_r_param = True
        ctx = Ctx(roles, sinks, {}, {})
        self.parse_block(f.body, ctx)

    # -- statements ---------------------------------------------------------

    def parse_block(self, toks: list[Token], ctx: Ctx) -> None:
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            if t.kind == "punct" and t.text == ";":
                i += 1
                continue
            if t.kind == "punct" and t.text == "{":
                close = match_paren(toks, i, "{", "}")
                if close < 0:
                    return
                self.parse_block(toks[i + 1:close], ctx)
                i = close + 1
                continue
            if t.kind == "id" and t.text in ("for", "while"):
                i = self.parse_loop(toks, i, ctx)
                continue
            if t.kind == "id" and t.text == "do":
                i = self.parse_do(toks, i, ctx)
                continue
            if t.kind == "id" and t.text == "if":
                i = self.parse_if(toks, i, ctx)
                continue
            # Plain statement: up to the `;` at depth 0 (brace-aware, so a
            # lambda literal inside the statement is consumed whole).
            end = self.stmt_end(toks, i)
            self.parse_stmt(toks[i:end], ctx)
            i = end + 1

    @staticmethod
    def stmt_end(toks: list[Token], start: int) -> int:
        depth = 0
        for j in range(start, len(toks)):
            t = toks[j]
            if t.kind == "punct":
                if t.text in ("(", "[", "{"):
                    depth += 1
                elif t.text in (")", "]", "}"):
                    depth -= 1
                elif t.text == ";" and depth == 0:
                    return j
        return len(toks)

    def parse_stmt(self, stmt: list[Token], ctx: Ctx) -> None:
        if not stmt:
            return
        if stmt[0].kind == "id" and stmt[0].text == "return":
            self.scan_expr(stmt[1:], ctx)
            return
        if self.try_lambda_decl(stmt, ctx):
            return
        self.try_role_decl(stmt, ctx)
        self.try_string_decl(stmt, ctx)
        self.scan_expr(stmt, ctx)

    def try_role_decl(self, stmt: list[Token], ctx: Ctx) -> None:
        """`persist::Encoder enc;` / `Encoder enc(out);` /
        `const persist::ChunkFile& file = ...;` — registers the local role.
        Local Encoders buffer into a pending list (consumed by writer.Add);
        local Decoder/ChunkWriter/ChunkFile traffic lands in the function's
        out lists directly (drivers are filtered out later)."""
        for idx in range(min(len(stmt), 6)):
            t = stmt[idx]
            if t.kind != "id" or t.text not in ROLE_TYPES:
                continue
            if idx > 0 and stmt[idx - 1].kind == "punct" and \
                    stmt[idx - 1].text in (".", "->"):
                return
            j = idx + 1
            while j < len(stmt) and stmt[j].kind == "punct" and \
                    stmt[j].text in ("&", "*", "&&"):
                j += 1
            if j >= len(stmt) or stmt[j].kind != "id":
                return
            nxt = stmt[j + 1] if j + 1 < len(stmt) else None
            if nxt is not None and not (nxt.kind == "punct" and
                                        nxt.text in ("=", "(", "{", ";")):
                return
            var = stmt[j].text
            role = ROLE_TYPES[t.text]
            ctx.roles[var] = role
            if role == "enc":
                ctx.sinks[var] = []  # pending payload buffer
            elif role in ("writer",):
                ctx.sinks[var] = self.func.out_w
            else:
                ctx.sinks[var] = self.func.out_r
            return

    def try_string_decl(self, stmt: list[Token], ctx: Ctx) -> None:
        for idx in range(min(len(stmt), 5)):
            if stmt[idx].kind == "id" and stmt[idx].text == "string":
                j = idx + 1
                while j < len(stmt) and stmt[j].kind == "punct" and \
                        stmt[j].text in ("&", "*"):
                    j += 1
                if j < len(stmt) and stmt[j].kind == "id" and \
                        j + 1 < len(stmt) and \
                        stmt[j + 1].kind == "punct" and \
                        stmt[j + 1].text == "=":
                    ctx.strvars[stmt[j].text] = self.name_pattern(
                        stmt[j + 2:], ctx)
                return

    def try_lambda_decl(self, stmt: list[Token], ctx: Ctx) -> bool:
        """`auto name = [..](params) { body };` — records the lambda for
        call-site inlining; an immediately-invoked lambda is parsed in
        place."""
        if len(stmt) < 5 or stmt[0].kind != "id" or stmt[0].text != "auto":
            return False
        if stmt[1].kind != "id" or stmt[2].kind != "punct" or \
                stmt[2].text != "=" or stmt[3].kind != "punct" or \
                stmt[3].text != "[":
            return False
        cap_close = match_paren(stmt, 3, "[", "]")
        if cap_close < 0:
            return False
        j = cap_close + 1
        param_names: list[str] = []
        if j < len(stmt) and stmt[j].kind == "punct" and stmt[j].text == "(":
            pclose = match_paren(stmt, j)
            if pclose < 0:
                return False
            for group in split_top(stmt[j + 1:pclose], ","):
                ids = [x.text for x in group if x.kind == "id"]
                if ids:
                    param_names.append(ids[-1])
            j = pclose + 1
        depth = 0
        body_open = -1
        while j < len(stmt):
            tk = stmt[j]
            if tk.kind == "punct":
                if tk.text in ("(", "["):
                    depth += 1
                elif tk.text in (")", "]"):
                    depth -= 1
                elif tk.text == "{" and depth == 0:
                    body_open = j
                    break
            j += 1
        if body_open < 0:
            return False
        body_close = match_paren(stmt, body_open, "{", "}")
        if body_close < 0:
            return False
        body = stmt[body_open + 1:body_close]
        ctx.lambdas[stmt[1].text] = (param_names, body)
        nxt = body_close + 1
        if nxt < len(stmt) and stmt[nxt].kind == "punct" and \
                stmt[nxt].text == "(":
            # Immediately invoked (staging-block idiom): inline now.
            self.parse_block(body, ctx)
        return True

    # -- control flow -------------------------------------------------------

    def parse_loop(self, toks: list[Token], i: int, ctx: Ctx) -> int:
        open_p = i + 1
        if open_p >= len(toks) or toks[open_p].text != "(":
            return i + 1
        close_p = match_paren(toks, open_p)
        if close_p < 0:
            return len(toks)
        body_start, body_end, nxt = self.body_span(toks, close_p + 1)
        child = ctx.child_fresh()
        # A read in the loop header (e.g. `while (dec.ReadX(&v))`) belongs
        # to every iteration; scan it into the child first.
        header = toks[open_p + 1:close_p]
        if toks[i].text == "while":
            self.scan_expr(header, child)
        else:
            for part in split_top(header, ";"):
                self.scan_expr(part, child)
        self.parse_block(toks[body_start:body_end], child)
        ctx.merge_wrapped(child, "repeat", toks[i].line)
        return nxt

    def parse_do(self, toks: list[Token], i: int, ctx: Ctx) -> int:
        body_start, body_end, nxt = self.body_span(toks, i + 1)
        child = ctx.child_fresh()
        self.parse_block(toks[body_start:body_end], child)
        ctx.merge_wrapped(child, "repeat", toks[i].line)
        # Skip the trailing `while (...) ;`
        j = nxt
        if j < len(toks) and toks[j].kind == "id" and toks[j].text == "while":
            close = match_paren(toks, j + 1)
            j = close + 1 if close > 0 else j + 1
            if j < len(toks) and toks[j].text == ";":
                j += 1
        return j

    def body_span(self, toks: list[Token], start: int
                  ) -> tuple[int, int, int]:
        """(body_start, body_end, index_after) for a braced or
        single-statement body beginning at `start`."""
        if start < len(toks) and toks[start].kind == "punct" and \
                toks[start].text == "{":
            close = match_paren(toks, start, "{", "}")
            if close < 0:
                return start + 1, len(toks), len(toks)
            return start + 1, close, close + 1
        end = self.stmt_end(toks, start)
        return start, end, min(end + 1, len(toks))

    def parse_if(self, toks: list[Token], i: int, ctx: Ctx) -> int:
        open_p = i + 1
        if open_p >= len(toks) or toks[open_p].text != "(":
            return i + 1
        close_p = match_paren(toks, open_p)
        if close_p < 0:
            return len(toks)
        cond = toks[open_p + 1:close_p]

        # Conjunct analysis: split at top-level && / || and classify each
        # piece. A conjunct is a "gate" when it only tests a Status
        # (`x.ok()` / `!x.ok()`): status-chained sequential decodes are
        # unconditional on the wire.
        conjuncts = self.split_cond(cond)

        cond_ctx = ctx.child_fresh()
        any_plain = False
        for conj in conjuncts:
            probe = ctx.child_fresh()
            self.scan_expr(conj, probe)
            has_ops = any(probe.sinks[v] for v in probe.sinks)
            is_gate = self.is_status_gate(conj)
            if has_ops:
                self.scan_expr(conj, cond_ctx)
            elif not is_gate:
                any_plain = True
        cond_has_ops = any(cond_ctx.sinks[v] for v in cond_ctx.sinks)

        body_start, body_end, nxt = self.body_span(toks, close_p + 1)
        then_ctx = ctx.child_fresh()
        self.parse_block(toks[body_start:body_end], then_ctx)

        else_ctx = None
        if nxt < len(toks) and toks[nxt].kind == "id" and \
                toks[nxt].text == "else":
            else_ctx = ctx.child_fresh()
            ebody_start, ebody_end, enxt = self.body_span(toks, nxt + 1)
            self.parse_block(toks[ebody_start:ebody_end], else_ctx)
            nxt = enxt

        line = toks[i].line
        if cond_has_ops and not any_plain:
            # Every non-gate conjunct reads: the reads are unconditional
            # (the `!dec.ReadX(..) || !dec.ReadY(..)` early-exit idiom).
            ctx.merge_flat(cond_ctx)
            ctx.merge_wrapped(then_ctx, "opt", line)
        elif cond_has_ops:
            # Mixed guard + read (`if (present && !dec.ReadX(..))`): the
            # reads (and any body ops) are optional fields.
            for var in ctx.sinks:
                merged = cond_ctx.sinks.get(var, []) + \
                    then_ctx.sinks.get(var, [])
                if merged:
                    ctx.sinks[var].append(Op("opt", line, body=merged))
        else:
            gate_only = bool(conjuncts) and all(
                self.is_status_gate(c) for c in conjuncts)
            for var in ctx.sinks:
                ops = then_ctx.sinks.get(var, [])
                if not ops:
                    continue
                if gate_only:
                    ctx.sinks[var].extend(ops)
                else:
                    ctx.sinks[var].append(Op("opt", line, body=ops))
        if else_ctx is not None:
            ctx.merge_wrapped(else_ctx, "opt", line)
        return nxt

    @staticmethod
    def split_cond(cond: list[Token]) -> list[list[Token]]:
        parts: list[list[Token]] = [[]]
        depth = 0
        for t in cond:
            if t.kind == "punct":
                if t.text in ("(", "[", "{"):
                    depth += 1
                elif t.text in (")", "]", "}"):
                    depth -= 1
                elif t.text in ("&&", "||") and depth == 0:
                    parts.append([])
                    continue
            parts[-1].append(t)
        return [p for p in parts if p]

    @staticmethod
    def is_status_gate(conj: list[Token]) -> bool:
        for idx in range(len(conj) - 2):
            if conj[idx].kind == "punct" and conj[idx].text in (".", "->") \
                    and conj[idx + 1].kind == "id" \
                    and conj[idx + 1].text == "ok" \
                    and conj[idx + 2].kind == "punct" \
                    and conj[idx + 2].text == "(":
                return True
        return False

    # -- expressions ---------------------------------------------------------

    def scan_expr(self, toks: list[Token], ctx: Ctx) -> None:
        """Emits ops for one expression/statement, in textual order.

        - `enc.WriteX(arg)` / `dec.ReadX(&arg)` -> field
        - `enc.AppendRaw(p, n)` -> raw (+ raw-schema proof)
        - `writer.Add(name, payload)` -> chunk (drains the payload Encoder)
        - `file.Decode(name, [..](Decoder& dec){..})` -> decode
        - `Helper(.., role, ..)` / `obj->Helper(role)` -> sub
        - `localLambda(args)` -> inlined with textual param substitution
        """
        n = len(toks)
        emitted_calls: set[int] = set()
        i = 0
        while i < n:
            t = toks[i]
            prev = toks[i - 1] if i > 0 else None
            prev_is_member = prev is not None and prev.kind == "punct" and \
                prev.text in (".", "->", "::")
            if t.kind == "id" and not prev_is_member and \
                    t.text in ctx.lambdas and i + 1 < n and \
                    toks[i + 1].kind == "punct" and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                if close < 0:
                    return
                params, body = ctx.lambdas[t.text]
                args = split_top(toks[i + 2:close], ",")
                self.parse_block(self.substitute(body, params, args), ctx)
                i = close + 1
                continue
            if t.kind == "id" and not prev_is_member and t.text in ctx.roles:
                var = t.text
                role = ctx.roles[var]
                nxt = toks[i + 1] if i + 1 < n else None
                if nxt is not None and nxt.kind == "punct" and \
                        nxt.text in (".", "->") and i + 3 < n and \
                        toks[i + 2].kind == "id" and \
                        toks[i + 3].kind == "punct" and \
                        toks[i + 3].text == "(":
                    member = toks[i + 2].text
                    close = match_paren(toks, i + 3)
                    if close < 0:
                        return
                    args = toks[i + 4:close]
                    self.handle_member(var, role, member, args, t.line, ctx)
                    i = close + 1
                    continue
                if nxt is not None and nxt.kind == "punct" and \
                        nxt.text in (".", "->"):
                    i += 1
                    continue
                # Role var used as an argument: attribute a sub op to the
                # innermost call expression containing it.
                call = self.innermost_call(toks, i)
                if call is not None and call[0] not in emitted_calls:
                    callee_idx = call[0]
                    emitted_calls.add(callee_idx)
                    recv: list[str] = []
                    k = callee_idx
                    while k >= 2 and toks[k - 1].kind == "punct" and \
                            toks[k - 1].text in (".", "->", "::") and \
                            toks[k - 2].kind == "id":
                        recv.insert(0, toks[k - 2].text)
                        k -= 2
                    ctx.sinks[var].append(Op(
                        "sub", t.line, type=toks[callee_idx].text,
                        name=".".join(recv)))
                i += 1
                continue
            i += 1

    def handle_member(self, var: str, role: str, member: str,
                      args: list[Token], line: int, ctx: Ctx) -> None:
        sink = ctx.sinks[var]
        if role == "enc" and member in WRITE_TYPES:
            sink.append(Op("field", line, type=WRITE_TYPES[member],
                           name=render_toks(args)))
            return
        if role == "dec" and member in READ_TYPES:
            sink.append(Op("field", line, type=READ_TYPES[member],
                           name=render_toks(args)))
            return
        if role == "enc" and member == "AppendRaw":
            parts = split_top(args, ",")
            if not self.raw_is_bytes(parts):
                self.report(
                    line, "raw-schema",
                    f"AppendRaw of `{render_toks(args)}` is not provably a "
                    f"byte buffer (x.data(), x.size() or a string literal) "
                    f"— whole-object raw appends hide fields from the "
                    f"schema and serialize padding; encode field-wise")
            sink.append(Op("raw", line, name=render_toks(parts[0])
                           if parts else ""))
            return
        if role == "writer" and member == "Add":
            parts = split_top(args, ",")
            if len(parts) != 2:
                self.report(line, "schema-unextractable",
                            "writer.Add() with an unexpected arg shape")
                return
            pattern = self.name_pattern(parts[0], ctx)
            payload_enc = None
            for tok in parts[1]:
                if tok.kind == "id" and ctx.roles.get(tok.text) == "enc":
                    payload_enc = tok.text
                    break
            if payload_enc is None:
                self.report(
                    line, "schema-unextractable",
                    f"chunk `{pattern}` payload is not a local "
                    f"persist::Encoder — the chunk's fields cannot be "
                    f"extracted; build the payload in an Encoder")
                return
            body = list(ctx.sinks[payload_enc])
            ctx.sinks[payload_enc].clear()
            sink.append(Op("chunk", line, type=pattern, body=body))
            return
        if role == "file" and member == "Decode":
            parts = split_top(args, ",")
            if len(parts) < 2:
                self.report(line, "schema-unextractable",
                            "file.Decode() with an unexpected arg shape")
                return
            pattern = self.name_pattern(parts[0], ctx)
            body = self.parse_decode_lambda(parts[1], ctx)
            if body is None:
                self.report(
                    line, "schema-unextractable",
                    f"decode of `{pattern}` is not an inline "
                    f"[..](persist::Decoder& dec) lambda — the chunk's "
                    f"fields cannot be extracted")
                return
            sink.append(Op("decode", line, type=pattern, body=body))
            return
        if member in IGNORED_MEMBERS:
            return
        self.report(
            line, "schema-unextractable",
            f"unknown method `.{member}()` on {role} `{var}` — not a "
            f"recognized wire primitive; extend tools/schema.py or "
            f"refactor onto Write*/Read* helpers")

    def parse_decode_lambda(self, toks: list[Token], ctx: Ctx
                            ) -> list[Op] | None:
        lb = next((idx for idx, t in enumerate(toks)
                   if t.kind == "punct" and t.text == "["), -1)
        if lb < 0:
            return None
        cap_close = match_paren(toks, lb, "[", "]")
        if cap_close < 0 or cap_close + 1 >= len(toks) or \
                toks[cap_close + 1].text != "(":
            return None
        pclose = match_paren(toks, cap_close + 1)
        if pclose < 0:
            return None
        roles = role_params(toks[cap_close + 2:pclose])
        dec_var = next((v for v, r in roles.items() if r == "dec"), None)
        if dec_var is None:
            return None
        depth = 0
        body_open = -1
        for j in range(pclose + 1, len(toks)):
            tk = toks[j]
            if tk.kind == "punct":
                if tk.text in ("(", "["):
                    depth += 1
                elif tk.text in (")", "]"):
                    depth -= 1
                elif tk.text == "{" and depth == 0:
                    body_open = j
                    break
        if body_open < 0:
            return None
        body_close = match_paren(toks, body_open, "{", "}")
        if body_close < 0:
            return None
        ops: list[Op] = []
        child = Ctx(dict(ctx.roles), dict(ctx.sinks), ctx.lambdas,
                    ctx.strvars)
        child.roles[dec_var] = "dec"
        child.sinks[dec_var] = ops
        self.parse_block(toks[body_open + 1:body_close], child)
        return ops

    @staticmethod
    def substitute(body: list[Token], params: list[str],
                   args: list[list[Token]]) -> list[Token]:
        mapping = {p: args[idx] for idx, p in enumerate(params)
                   if idx < len(args)}
        out: list[Token] = []
        for idx, t in enumerate(body):
            prev = body[idx - 1] if idx > 0 else None
            member = prev is not None and prev.kind == "punct" and \
                prev.text in (".", "->", "::")
            if t.kind == "id" and not member and t.text in mapping:
                out.extend(mapping[t.text])
            else:
                out.append(t)
        return out

    @staticmethod
    def innermost_call(toks: list[Token], i: int
                       ) -> tuple[int, int, int] | None:
        """Smallest `callee(...)` interval strictly containing position i;
        returns (callee_idx, open_idx, close_idx)."""
        best = None
        for idx in range(len(toks) - 1):
            t = toks[idx]
            if t.kind != "id" or t.text in CALL_KEYWORDS:
                continue
            if toks[idx + 1].kind != "punct" or toks[idx + 1].text != "(":
                continue
            close = match_paren(toks, idx + 1)
            if close < 0 or not (idx + 1 < i < close):
                continue
            if best is None or (close - idx) < (best[2] - best[0]):
                best = (idx, idx + 1, close)
        return best

    @staticmethod
    def raw_is_bytes(parts: list[list[Token]]) -> bool:
        if not parts:
            return False
        if any(string_literal(t) is not None for t in parts[0]):
            return True
        joined = [t for part in parts for t in part]
        has_data = any(
            joined[k].kind == "id" and joined[k].text == "data" and
            k > 0 and joined[k - 1].kind == "punct" and
            joined[k - 1].text in (".", "->")
            for k in range(len(joined)))
        has_size = any(
            joined[k].kind == "id" and joined[k].text in ("size", "length")
            and k > 0 and joined[k - 1].kind == "punct" and
            joined[k - 1].text in (".", "->")
            for k in range(len(joined)))
        return has_data and has_size

    def name_pattern(self, toks: list[Token], ctx: Ctx) -> str:
        """Chunk-name expression -> glob pattern: literals stay, known
        string locals expand, everything else is `*`."""
        parts = split_top(toks, "+")
        rendered: list[str] = []
        for part in parts:
            lit = next((string_literal(t) for t in part
                        if string_literal(t) is not None), None)
            if lit is not None and all(
                    t.kind != "id" or t.text in ("std",) for t in part):
                rendered.append(lit)
                continue
            ids = [t.text for t in part if t.kind == "id"]
            if len(ids) == 1 and ids[0] in ctx.strvars:
                rendered.append(ctx.strvars[ids[0]])
                continue
            rendered.append("*")
        pattern = "".join(rendered)
        while "**" in pattern:
            pattern = pattern.replace("**", "*")
        return pattern or "*"


# ---------------------------------------------------------------------------
# Tree scan: participants, pairing, symmetry
# ---------------------------------------------------------------------------


@dataclass
class Participant:
    func: Func
    side: str  # "w" | "r"

    @property
    def ops(self) -> list[Op]:
        return self.func.out_w if self.side == "w" else self.func.out_r


def has_schema_ops(ops: list[Op]) -> bool:
    for op in ops:
        if op.kind in ("field", "raw", "chunk", "decode"):
            return True
        if op.kind in ("repeat", "opt") and has_schema_ops(op.body):
            return True
    return False


def reader_candidates(wname: str) -> set[str]:
    cands = set(SPECIAL_PAIRS.get(wname, set()))
    if "Save" in wname:
        cands.add(wname.replace("Save", "Load", 1))
        cands.add(wname.replace("Save", "Restore", 1))
    if "Append" in wname:
        cands.add(wname.replace("Append", "Restore", 1))
    return cands


def sub_pair_ok(wname: str, rname: str) -> bool:
    return rname == wname or rname in reader_candidates(wname)


def strip_collect(ops: list[Op], collected: list[Op]) -> list[Op]:
    """Removes chunk/decode ops (collecting them, flattened) and drops
    emptied repeat/opt wrappers; returns the remaining record-level ops."""
    kept: list[Op] = []
    for op in ops:
        if op.kind in ("chunk", "decode"):
            collected.append(op)
            continue
        if op.kind in ("repeat", "opt"):
            inner = strip_collect(op.body, collected)
            if inner:
                kept.append(Op(op.kind, op.line, body=inner))
            continue
        kept.append(op)
    return kept


def compare_ops(wops: list[Op], rops: list[Op]
                ) -> tuple[str, int, int] | None:
    """Lockstep structural comparison; returns (message, writer_line,
    reader_line) for the first divergence, None when symmetric. Field
    *names* are informational (writer names member variables, reader names
    locals); wire type, order and loop/optional structure must agree."""
    for k in range(max(len(wops), len(rops))):
        if k >= len(wops):
            r = rops[k]
            wline = wops[-1].line if wops else 0
            return (f"reader op `{describe_op(r)}` has no written "
                    f"counterpart (writer ends after {len(wops)} op(s))",
                    wline, r.line)
        if k >= len(rops):
            w = wops[k]
            rline = rops[-1].line if rops else 0
            return (f"field/op `{describe_op(w)}` is written but never "
                    f"read (reader ends after {len(rops)} op(s))",
                    w.line, rline)
        w, r = wops[k], rops[k]
        if w.kind == "field" and r.kind == "field":
            if w.type != r.type:
                return (f"field `{w.name}` is written as {w.type} but read "
                        f"as {r.type} (`{r.name}`)", w.line, r.line)
            continue
        if w.kind == "sub" and r.kind == "sub":
            if not sub_pair_ok(w.type, r.type):
                return (f"writer delegates to `{w.type}` but reader calls "
                        f"`{r.type}`, which does not pair with it",
                        w.line, r.line)
            continue
        if w.kind == "raw" and r.kind == "raw":
            continue
        if w.kind in ("repeat", "opt") and w.kind == r.kind:
            inner = compare_ops(w.body, r.body)
            if inner is not None:
                return inner
            continue
        return (f"writer op `{describe_op(w)}` vs reader op "
                f"`{describe_op(r)}`: structure mismatch "
                f"({w.kind} vs {r.kind})", w.line, r.line)
    return None


class TreeScan:
    def __init__(self, root: Path):
        self.root = root
        self.result = AnalysisResult()
        self.supp: dict[Path, SuppressionIndex] = {}
        self.participants: list[Participant] = []
        self.wire_files: dict[str, tuple[Path, Path, list[Token], str]] = {}
        self.chunk_magic = ""
        self.reported: set[tuple[Path, int, str]] = set()

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        # The extractor and the whole-file AppendRaw sweep can both see the
        # same call site; keep one finding per (file, line, rule).
        key = (path, line, rule)
        if key in self.reported:
            return
        self.reported.add(key)
        supp = self.supp.get(path)
        ann = supp.lookup(rule, line) if supp else None
        self.result.findings.append(Finding(
            path=path, line=line, rule=rule, message=message,
            suppressed=ann is not None, suppressor=ann))

    def run(self) -> None:
        src = self.root / "src"
        if not src.is_dir():
            return
        for path in sorted(src.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            self.scan_file(path)
        self.pair_and_compare()
        for ann in self.result.annotations:
            if not ann.has_reason and any(r in RULES for r in ann.rules):
                self.result.findings.append(Finding(
                    path=ann.path, line=ann.line, rule="schema-annotation",
                    message=f"schema: {ann.kind}() without a reason"))

    def scan_file(self, path: Path) -> None:
        rel = path.relative_to(self.root)
        text = path.read_text(encoding="utf-8", errors="replace")
        self.result.files_scanned += 1
        raw_lines = text.splitlines()
        annotations = scan_schema_annotations(path, raw_lines)
        self.result.annotations.extend(annotations)
        self.supp[path] = SuppressionIndex(path, raw_lines, annotations)
        if not any(marker in text for marker in
                   ("Encoder", "Decoder", "ChunkWriter", "ChunkFile",
                    "AppendRaw", "PutU32", "GetU32")):
            return
        code_lines, _ = preprocess(text)
        tokens = analyze.lex(code_lines, keep_strings=True)
        is_persist = rel.parts[:2] == ("src", "persist")
        is_net = rel.parts[:3] == ("src", "server", "net")
        if is_persist:
            # The container framing itself lives here (SCHEMA.lock's
            # `container` section documents it); only the raw-schema rule
            # applies to the infrastructure.
            self.scan_raw_calls(path, tokens)
            m = re.search(r'k\w*Magic\s*(?:\[\s*\])?\s*=\s*"([^"]*)"', text)
            if m and not self.chunk_magic:
                self.chunk_magic = m.group(1)
            return
        if is_net:
            self.wire_files[path.name] = (path, rel, tokens, text)
            return
        self.scan_raw_calls(path, tokens)
        for func in find_functions(tokens):
            func.path = path
            func.rel = rel
            if not any(t.kind == "id" and t.text in ROLE_TYPES
                       for t in func.params + func.body):
                continue
            Extractor(func, lambda line, rule, msg, p=path:
                      self.report(p, line, rule, msg)).run()
            # Participation: a role *parameter* makes the function part of
            # the schema even when it only delegates (its subs are ordered
            # wire traffic); a local-role function participates only when
            # it moves real bytes itself — otherwise it is a driver
            # (Save()/Load() wrappers around AppendChunks/RestoreFromChunks)
            # and its delegations are covered by the callee pairs.
            if func.out_w and (func.has_w_param or
                               has_schema_ops(func.out_w)):
                self.participants.append(Participant(func, "w"))
            if func.out_r and (func.has_r_param or
                               has_schema_ops(func.out_r)):
                self.participants.append(Participant(func, "r"))

    def scan_raw_calls(self, path: Path, tokens: list[Token]) -> None:
        n = len(tokens)
        for i, t in enumerate(tokens):
            if t.kind != "id" or t.text != "AppendRaw":
                continue
            prev = tokens[i - 1] if i > 0 else None
            if prev is None or prev.kind != "punct" or \
                    prev.text not in (".", "->"):
                continue  # definition/declaration, not a call
            if i + 1 >= n or tokens[i + 1].kind != "punct" or \
                    tokens[i + 1].text != "(":
                continue
            close = match_paren(tokens, i + 1)
            if close < 0:
                continue
            args = tokens[i + 2:close]
            if not Extractor.raw_is_bytes(split_top(args, ",")):
                self.report(
                    path, t.line, "raw-schema",
                    f"AppendRaw of `{render_toks(args)}` is not provably a "
                    f"byte buffer (x.data(), x.size() or a string literal) "
                    f"— whole-object raw appends hide fields from the "
                    f"schema and serialize padding; encode field-wise")

    # -- pairing ------------------------------------------------------------

    def pair_and_compare(self) -> None:
        groups: dict[tuple[str, str], list[Participant]] = {}
        for p in self.participants:
            groups.setdefault((str(p.func.rel), p.func.cls), []).append(p)

        # Global chunk registry: a reader may decode a chunk that a writer
        # in a *different* pair produced (the server decodes agent/options,
        # which DdpgAgent::AppendChunks wrote under its prefix).
        registry: list[Op] = []
        reg_owner: dict[int, Func] = {}
        for p in self.participants:
            if p.side != "w":
                continue
            chunks: list[Op] = []
            strip_collect(p.ops, chunks)
            for c in chunks:
                registry.append(c)
                reg_owner[id(c)] = p.func

        self.pairs: list[tuple[Participant, Participant]] = []
        for (rel, cls), members in sorted(groups.items()):
            writers = [p for p in members if p.side == "w"]
            readers = [p for p in members if p.side == "r"]
            used: set[int] = set()
            for w in writers:
                cands = reader_candidates(w.func.name)
                match = [r for r in readers if r.func.name in cands
                         and id(r) not in used]
                if not match and len(writers) == 1 and len(readers) == 1:
                    match = readers[:]
                if len(match) != 1:
                    wanted = ", ".join(sorted(cands)) or "a Load/Restore twin"
                    self.report(
                        w.func.path, w.func.line, "schema-unpaired",
                        f"writer `{w.func.qual}` has no reader counterpart "
                        f"(looked for {wanted} in {rel}) — bytes nothing "
                        f"can decode")
                    continue
                used.add(id(match[0]))
                self.pairs.append((w, match[0]))
            for r in readers:
                if id(r) not in used:
                    self.report(
                        r.func.path, r.func.line, "schema-unpaired",
                        f"reader `{r.func.qual}` has no writer counterpart "
                        f"in {rel} — it decodes bytes nothing writes")
        for w, r in self.pairs:
            self.compare_pair(w, r, registry, reg_owner)

    def loc(self, path: Path, line: int) -> str:
        return f"{rel_str(path, self.root)}:{line}"

    def compare_pair(self, w: Participant, r: Participant,
                     registry: list[Op], reg_owner: dict[int, Func]) -> None:
        wchunks: list[Op] = []
        rdecodes: list[Op] = []
        wkept = strip_collect(w.ops, wchunks)
        rkept = strip_collect(r.ops, rdecodes)
        mismatch = compare_ops(wkept, rkept)
        if mismatch is not None:
            msg, wline, rline = mismatch
            self.report(
                w.func.path, wline or w.func.line, "schema-asymmetry",
                f"{w.func.qual} / {r.func.qual}: {msg} "
                f"[written at {self.loc(w.func.path, wline or w.func.line)},"
                f" read at {self.loc(r.func.path, rline or r.func.line)}]")
            return  # one finding per pair: fix and re-run

        matched_r: set[int] = set()
        for c in wchunks:
            d = self.match_chunk(c, rdecodes, matched_r)
            if d is None:
                self.report(
                    w.func.path, c.line, "schema-asymmetry",
                    f"chunk `{c.type}` is written by {w.func.qual} at "
                    f"{self.loc(w.func.path, c.line)} but never decoded by "
                    f"{r.func.qual}")
                continue
            matched_r.add(id(d))
            inner = compare_ops(c.body, d.body)
            if inner is not None:
                msg, wline, rline = inner
                self.report(
                    w.func.path, wline or c.line, "schema-asymmetry",
                    f"chunk `{c.type}`: {msg} [written at "
                    f"{self.loc(w.func.path, wline or c.line)}, read at "
                    f"{self.loc(r.func.path, rline or d.line)}]")
        for d in rdecodes:
            if id(d) in matched_r:
                continue
            # Not written by this pair's writer: search the global
            # registry before declaring the decode unpaired.
            g = self.match_chunk(d, registry, set())
            if g is None:
                self.report(
                    r.func.path, d.line, "schema-unpaired",
                    f"{r.func.qual} decodes chunk `{d.type}` that no "
                    f"writer produces")
                continue
            owner = reg_owner.get(id(g))
            inner = compare_ops(g.body, d.body)
            if inner is not None and owner is not None:
                msg, wline, rline = inner
                self.report(
                    r.func.path, rline or d.line, "schema-asymmetry",
                    f"chunk `{d.type}` (written by {owner.qual}): {msg} "
                    f"[written at {self.loc(owner.path, wline or g.line)}, "
                    f"read at {self.loc(r.func.path, rline or d.line)}]")

    @staticmethod
    def match_chunk(c: Op, pool: list[Op], taken: set[int]) -> Op | None:
        exact = [d for d in pool if id(d) not in taken and d.type == c.type]
        if exact:
            return exact[0]
        globbed = [d for d in pool if id(d) not in taken and
                   (fnmatch.fnmatchcase(d.type, c.type) or
                    fnmatch.fnmatchcase(c.type, d.type))]
        return globbed[0] if len(globbed) >= 1 else None

    # -- manifests ----------------------------------------------------------

    def schema_manifest(self) -> dict | None:
        if not self.pairs:
            return None
        records = {}
        for w, r in sorted(self.pairs,
                           key=lambda p: (str(p[0].func.rel),
                                          p[0].func.qual)):
            key = f"{w.func.rel.as_posix()}::{w.func.qual}"
            records[key] = {
                "writer": w.func.qual,
                "reader": r.func.qual,
                "ops": [render_op(op) for op in w.ops],
            }
        return {
            "format": "cdbtune-checkpoint-v1",
            "container": {
                "magic": self.chunk_magic,
                "frame": "u32 name_len, raw name, u64 payload_len, "
                         "raw payload, u32 crc32(name_len..payload)",
                "commit": "trailing __end__ record carrying the u64 "
                          "chunk count; absent or short means torn write",
            },
            "records": records,
        }


# ---------------------------------------------------------------------------
# Wire (frame header) extractor — src/server/net/
# ---------------------------------------------------------------------------


def extract_wire(scan: TreeScan) -> dict | None:
    entry = scan.wire_files.get("frame.cc")
    header = scan.wire_files.get("frame.h")
    if entry is None:
        return None
    path, rel, tokens, _text = entry
    consts: dict[str, int] = {}
    if header is not None:
        for name in ("kFrameMagic", "kFrameVersion", "kFrameHeaderBytes"):
            m = re.search(name + r"\s*=\s*(0[xX][0-9a-fA-F]+|\d+)",
                          header[3])
            if m:
                consts[name] = int(m.group(1), 0)

    funcs = find_functions(tokens)
    writer = next((f for f in funcs if f.name not in ("PutU32", "GetU32")
                   and any(t.kind == "id" and t.text == "PutU32"
                           for t in f.body)), None)
    reader = next((f for f in funcs if f.name not in ("PutU32", "GetU32")
                   and any(t.kind == "id" and t.text == "GetU32"
                           for t in f.body)), None)
    if writer is None or reader is None:
        scan.report(path, 1, "schema-unextractable",
                    "could not locate the frame encoder (PutU32 caller) "
                    "and decoder (GetU32 caller) in frame.cc")
        return None
    writer.path = reader.path = path

    # Writer: ordered header fields from PutU32 / .push_back on the wire
    # string, then the payload append.
    fields: list[dict] = []
    field_lines: list[int] = []
    offset = 0
    payload_written = False
    toks = writer.body
    i = 0
    while i < len(toks) - 1:
        t = toks[i]
        if t.kind == "id" and t.text == "PutU32" and \
                toks[i + 1].text == "(":
            close = match_paren(toks, i + 1)
            parts = split_top(toks[i + 2:close], ",")
            name = render_toks(parts[1]) if len(parts) > 1 else ""
            fields.append({"offset": offset, "size": 4, "type": "u32",
                           "name": name})
            field_lines.append(t.line)
            offset += 4
            i = close + 1
            continue
        if t.kind == "id" and t.text == "push_back" and i > 0 and \
                toks[i - 1].kind == "punct" and toks[i - 1].text == "." and \
                toks[i + 1].text == "(":
            close = match_paren(toks, i + 1)
            args = toks[i + 2:close]
            name = render_toks(args)
            if any(a.kind == "chr" for a in args):
                name = "reserved"
            fields.append({"offset": offset, "size": 1, "type": "u8",
                           "name": name})
            field_lines.append(t.line)
            offset += 1
            i = close + 1
            continue
        if t.kind == "id" and t.text == "append" and i > 0 and \
                toks[i - 1].kind == "punct" and toks[i - 1].text == ".":
            payload_written = True
        i += 1

    # Reader: (offset, size) coverage from GetU32(base [+ N]) calls and
    # base[N] byte reads; textual order is irrelevant — the header is
    # random-access — so symmetry is judged by offset.
    reads: dict[int, tuple[int, str, int]] = {}  # offset -> (size, type, ln)
    bases: set[str] = set()
    toks = reader.body
    payload_read = False
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "GetU32" and i + 1 < len(toks) and \
                toks[i + 1].text == "(":
            close = match_paren(toks, i + 1)
            arg = toks[i + 2:close]
            ids = [a.text for a in arg if a.kind == "id"]
            nums = [a.text for a in arg if a.kind == "num"]
            if ids:
                bases.add(ids[0])
            off = int(nums[0], 0) if nums else 0
            reads.setdefault(off, (4, "u32", t.line))
        if t.kind == "id" and t.text == "assign":
            payload_read = True
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in bases and i + 3 < len(toks) and \
                toks[i + 1].kind == "punct" and toks[i + 1].text == "[" and \
                toks[i + 2].kind == "num" and \
                toks[i + 3].kind == "punct" and toks[i + 3].text == "]":
            off = int(toks[i + 2].text, 0)
            reads.setdefault(off, (1, "u8", t.line))

    header_bytes = consts.get("kFrameHeaderBytes", offset)
    if offset != header_bytes:
        scan.report(path, writer.line, "schema-asymmetry",
                    f"frame encoder emits a {offset}-byte header but "
                    f"kFrameHeaderBytes is {header_bytes}")
    for idx, f in enumerate(fields):
        got = reads.get(f["offset"])
        if got is None:
            scan.report(
                path, field_lines[idx], "schema-asymmetry",
                f"header field `{f['name']}` ({f['type']} at offset "
                f"{f['offset']}) is written at "
                f"{scan.loc(path, field_lines[idx])} but the decoder never "
                f"reads that offset")
        elif got[0] != f["size"]:
            scan.report(
                path, field_lines[idx], "schema-asymmetry",
                f"header field `{f['name']}` at offset {f['offset']} is "
                f"written as {f['size']} byte(s) at "
                f"{scan.loc(path, field_lines[idx])} but read as {got[0]} "
                f"byte(s) at {scan.loc(path, got[2])}")
    covered = {f["offset"] for f in fields}
    for off, (size, typ, ln) in sorted(reads.items()):
        if off >= header_bytes:
            continue
        if off not in covered:
            scan.report(
                path, ln, "schema-asymmetry",
                f"decoder reads {typ} at header offset {off} "
                f"({scan.loc(path, ln)}) but the encoder writes no field "
                f"there")
    if payload_written != payload_read:
        scan.report(path, writer.line, "schema-asymmetry",
                    "payload handling differs between frame encoder and "
                    "decoder")

    return {
        "format": "cdbtune-frame-v1",
        "magic": f"0x{consts['kFrameMagic']:08X}"
                 if "kFrameMagic" in consts else "",
        "version": consts.get("kFrameVersion", 0),
        "header_bytes": header_bytes,
        "fields": fields,
        "payload": f"`length` bytes immediately after the "
                   f"{header_bytes}-byte header",
        "writer": writer.qual,
        "reader": reader.qual,
    }


# ---------------------------------------------------------------------------
# Public API + CLI
# ---------------------------------------------------------------------------


def extract_tree(root: Path) -> tuple[AnalysisResult, dict | None,
                                      dict | None]:
    scan = TreeScan(root)
    scan.run()
    wire = extract_wire(scan)
    return scan.result, scan.schema_manifest(), wire


def scan_tree(root: Path) -> AnalysisResult:
    """Findings + annotations only — the debt gate's entry point
    (tools/lint.py --report-suppressions)."""
    return extract_tree(root)[0]


def canonical(manifest: dict) -> str:
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def check_locks(root: Path, schema: dict | None, wire: dict | None,
                bless: bool) -> int:
    status = 0
    for manifest, lock_rel in ((schema, SCHEMA_LOCK_REL),
                               (wire, WIRE_LOCK_REL)):
        if manifest is None:
            continue
        lock_path = root / lock_rel
        text = canonical(manifest)
        if bless:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            lock_path.write_text(text, encoding="utf-8")
            print(f"schema: blessed {lock_rel}")
            continue
        if not lock_path.is_file():
            print(f"schema: {lock_rel} is missing — run "
                  f"`tools/schema.py --bless` to create it",
                  file=sys.stderr)
            status = 1
            continue
        committed = lock_path.read_text(encoding="utf-8")
        if committed != text:
            print(f"schema: {lock_rel} drifted from the extracted schema:",
                  file=sys.stderr)
            diff = difflib.unified_diff(
                committed.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"{lock_rel} (committed)",
                tofile=f"{lock_rel} (extracted)")
            sys.stderr.writelines(diff)
            print("schema: if this change is intentional, bump the format "
                  "version (DESIGN.md §14 add-a-field rule) and run "
                  "`tools/schema.py --bless`", file=sys.stderr)
            status = 1
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree root to scan (src/ underneath it); the "
                             "selftest points this at fixture trees")
    parser.add_argument("--check", action="store_true",
                        help="also diff extracted manifests against the "
                             "committed SCHEMA.lock / WIRE.lock (CI gate)")
    parser.add_argument("--bless", action="store_true",
                        help="regenerate the lock files (requires a clean "
                             "extraction: no active findings)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON (CI annotations)")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="with --json, include suppressed findings")
    args = parser.parse_args()
    root = args.root.resolve()

    result, schema, wire = extract_tree(root)
    active = result.active()

    if args.json:
        findings = result.findings if args.include_suppressed else active
        payload = {
            "tool": "schema",
            "root": str(root),
            "files_scanned": result.files_scanned,
            "findings": [{
                "file": rel_str(f.path, root),
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
                "suppressed": f.suppressed,
            } for f in findings],
            "counts": {},
            "suppressed_count": sum(1 for f in result.findings
                                    if f.suppressed),
        }
        for f in active:
            payload["counts"][f.rule] = payload["counts"].get(f.rule, 0) + 1
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 1 if active else 0

    for f in active:
        print(f"{rel_str(f.path, root)}:{f.line}: [{f.rule}] {f.message}")
    if active:
        print(f"\nschema: {len(active)} finding(s)", file=sys.stderr)
        if args.bless:
            print("schema: refusing to --bless while findings are active",
                  file=sys.stderr)
        return 1

    status = 0
    if args.check or args.bless:
        status = check_locks(root, schema, wire, args.bless)
    if status == 0:
        suppressed = sum(1 for f in result.findings if f.suppressed)
        n_records = len(schema["records"]) if schema else 0
        print(f"schema: clean ({result.files_scanned} files, {n_records} "
              f"record pair(s), {suppressed} suppressed finding(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
