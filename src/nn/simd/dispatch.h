#ifndef CDBTUNE_NN_SIMD_DISPATCH_H_
#define CDBTUNE_NN_SIMD_DISPATCH_H_

#include <string>

#include "nn/simd/gemm.h"

namespace cdbtune::nn::simd {

/// Instruction-set tiers for the GEMM microkernels, ordered by preference.
/// All tiers produce bitwise identical results (see gemm.h), so dispatch is
/// purely a performance decision.
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kNumTiers = 3;

const char* TierName(Tier tier);

/// Parses "scalar" / "avx2" / "avx512" (the CDBTUNE_SIMD vocabulary).
/// Returns false on anything else.
bool ParseTier(const std::string& text, Tier* out);

/// True when the tier's kernels were compiled in AND the running CPU
/// reports the matching ISA. kScalar is always available.
bool TierSupported(Tier tier);

/// The tier every Matrix GEMM currently dispatches to. Resolved once on
/// first use: the CDBTUNE_SIMD environment variable if set to a supported
/// tier (an unsupported or unknown value logs a warning and falls through),
/// otherwise the best tier the CPU supports.
Tier ActiveTier();

/// Kernel table for ActiveTier().
const GemmKernels& ActiveKernels();

/// Overrides the active tier (tests and the per-tier GEMM bench). Returns
/// false — leaving the active tier unchanged — when the tier is not
/// supported on this machine. Not thread-safe against concurrent GEMMs;
/// call from the top level, like ComputeContext::SetThreads.
bool SetTier(Tier tier);

}  // namespace cdbtune::nn::simd

#endif  // CDBTUNE_NN_SIMD_DISPATCH_H_
