#ifndef CDBTUNE_UTIL_STATUS_H_
#define CDBTUNE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cdbtune::util {

/// Error categories used across the library. Modeled after the small set of
/// conditions a tuning system actually distinguishes: user error
/// (kInvalidArgument), missing entities (kNotFound), engine-side failures
/// (kInternal), the database instance crashing under a bad configuration
/// (kCrashed, see Section 5.2.3 of the paper), unimplemented paths, and
/// unrecoverable corruption of persisted state (kDataLoss — a checkpoint
/// that fails its CRC, a truncated chunk, a torn write).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kCrashed,
  kUnimplemented,
  kDataLoss,
};

/// Returns a stable human-readable name for `code` ("OK", "CRASHED", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, used instead of exceptions.
///
/// Functions that can fail return `Status` (or `StatusOr<T>`), and callers
/// are expected to check `ok()` before proceeding. The class is cheap to
/// copy in the common OK case (empty message string).
///
/// [[nodiscard]] makes silently dropping a returned Status a compile-time
/// diagnostic; tools/lint.py additionally rejects `(void)` casts that
/// launder one away without a justification comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Crashed(std::string msg) {
    return Status(StatusCode::kCrashed, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Never holds both.
///
/// Usage:
///   StatusOr<Config> cfg = ParseConfig(text);
///   if (!cfg.ok()) return cfg.status();
///   Use(cfg.value());
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT
  /// Constructs from a non-OK status (implicit so `return status;` works).
  StatusOr(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok(). Accessing the value of an error aborts.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace cdbtune::util

/// Propagates a non-OK Status from an expression to the caller.
#define CDBTUNE_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::cdbtune::util::Status _status = (expr);           \
    if (!_status.ok()) return _status;                  \
  } while (false)

#endif  // CDBTUNE_UTIL_STATUS_H_
