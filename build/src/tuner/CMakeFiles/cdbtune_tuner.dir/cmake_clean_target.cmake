file(REMOVE_RECURSE
  "libcdbtune_tuner.a"
)
