// AVX2 tier: 256-bit register-blocked GEMM microkernels. Compiled with
// -mavx2 -mfma -ffp-contract=off; every kernel uses explicit mul-then-add
// vectors (never an FMA intrinsic) so each element accumulates with the
// same two-rounding arithmetic as the scalar tier — the -ffp-contract=off
// keeps the compiler from re-fusing them. On a non-AVX2 build this file
// degrades to a {supported = false} table and the dispatcher skips it.
#include "nn/simd/gemm.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace cdbtune::nn::simd {

namespace {

/// Column-strip width: one microtile row spans two ymm registers.
constexpr size_t kW = 8;
/// Microtile height. 6 rows x 2 vectors = 12 accumulators, 2 B vectors and
/// 1 broadcast leave one of the 16 ymm registers spare.
constexpr size_t kTileRows = 6;

void Avx2PackB(const double* b, double* bp, size_t k, size_t m) {
  const size_t strips = m / kW;
  for (size_t s = 0; s < strips; ++s) {
    const double* src = b + s * kW;
    double* dst = bp + s * k * kW;
    for (size_t p = 0; p < k; ++p) {
      _mm256_storeu_pd(dst, _mm256_loadu_pd(src));
      _mm256_storeu_pd(dst + 4, _mm256_loadu_pd(src + 4));
      src += m;
      dst += kW;
    }
  }
}

/// One kRows x 8 output tile: accumulators live in registers across the
/// whole k sweep. The per-row a == 0.0 test skips the row's term exactly
/// like the scalar kernel (required for bit-identity: 0 * inf and -0.0
/// cases aside, a skipped term must stay skipped).
template <int kRows>
void RowTile(const double* a, size_t lda, const double* bsrc, size_t bstride,
             double* o, size_t ldo, size_t k) {
  __m256d acc[kRows][2];
  for (int r = 0; r < kRows; ++r) {
    acc[r][0] = _mm256_loadu_pd(o + r * ldo);
    acc[r][1] = _mm256_loadu_pd(o + r * ldo + 4);
  }
  for (size_t p = 0; p < k; ++p) {
    const double* b_row = bsrc + p * bstride;
    const __m256d b0 = _mm256_loadu_pd(b_row);
    const __m256d b1 = _mm256_loadu_pd(b_row + 4);
    for (int r = 0; r < kRows; ++r) {
      const double av = a[r * lda + p];
      if (av == 0.0) continue;
      const __m256d av_v = _mm256_set1_pd(av);
      acc[r][0] = _mm256_add_pd(acc[r][0], _mm256_mul_pd(av_v, b0));
      acc[r][1] = _mm256_add_pd(acc[r][1], _mm256_mul_pd(av_v, b1));
    }
  }
  for (int r = 0; r < kRows; ++r) {
    _mm256_storeu_pd(o + r * ldo, acc[r][0]);
    _mm256_storeu_pd(o + r * ldo + 4, acc[r][1]);
  }
}

void RowTileDispatch(int rows, const double* a, size_t lda, const double* bsrc,
                     size_t bstride, double* o, size_t ldo, size_t k) {
  switch (rows) {
    case 6:
      RowTile<6>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 5:
      RowTile<5>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 4:
      RowTile<4>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 3:
      RowTile<3>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 2:
      RowTile<2>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    default:
      RowTile<1>(a, lda, bsrc, bstride, o, ldo, k);
      break;
  }
}

void Avx2GemmRows(const double* a, const double* b, const double* bp,
                  double* o, size_t k, size_t m, size_t r0, size_t r1) {
  const size_t strips = m / kW;
  const size_t tail_c = strips * kW;
  for (size_t i = r0; i < r1; i += kTileRows) {
    const int rows = static_cast<int>(std::min(kTileRows, r1 - i));
    const double* a_tile = a + i * k;
    double* o_tile = o + i * m;
    for (size_t s = 0; s < strips; ++s) {
      if (bp != nullptr) {
        RowTileDispatch(rows, a_tile, k, bp + s * k * kW, kW, o_tile + s * kW,
                        m, k);
      } else {
        RowTileDispatch(rows, a_tile, k, b + s * kW, m, o_tile + s * kW, m, k);
      }
    }
    // Ragged tail columns (m % 8) read raw B with the scalar reference loop.
    for (int r = 0; r < rows; ++r) {
      const double* a_row = a_tile + r * k;
      double* o_row = o_tile + r * m;
      for (size_t p = 0; p < k; ++p) {
        const double av = a_row[p];
        if (av == 0.0) continue;
        const double* b_row = b + p * m;
        for (size_t j = tail_c; j < m; ++j) o_row[j] += av * b_row[j];
      }
    }
  }
}

void Avx2GemmTaCols(const double* a, const double* b, double* o, size_t n,
                    size_t k, size_t m, size_t p0, size_t p1) {
  const size_t m4 = m - m % 4;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    const double* b0 = b + i * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (size_t p = p0; p < p1; ++p) {
      const double v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      double* o_row = o + p * m;
      const __m256d w0 = _mm256_set1_pd(v0);
      const __m256d w1 = _mm256_set1_pd(v1);
      const __m256d w2 = _mm256_set1_pd(v2);
      const __m256d w3 = _mm256_set1_pd(v3);
      size_t j = 0;
      for (; j < m4; j += 4) {
        // Same association as the scalar quad term:
        // (((v0*b0 + v1*b1) + v2*b2) + v3*b3).
        __m256d t = _mm256_add_pd(_mm256_mul_pd(w0, _mm256_loadu_pd(b0 + j)),
                                  _mm256_mul_pd(w1, _mm256_loadu_pd(b1 + j)));
        t = _mm256_add_pd(t, _mm256_mul_pd(w2, _mm256_loadu_pd(b2 + j)));
        t = _mm256_add_pd(t, _mm256_mul_pd(w3, _mm256_loadu_pd(b3 + j)));
        _mm256_storeu_pd(o_row + j, _mm256_add_pd(_mm256_loadu_pd(o_row + j), t));
      }
      for (; j < m; ++j) {
        o_row[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
      }
    }
  }
  for (; i < n; ++i) {
    const double* a_row = a + i * k;
    const double* b_row = b + i * m;
    for (size_t p = p0; p < p1; ++p) {
      const double av = a_row[p];
      if (av == 0.0) continue;
      double* o_row = o + p * m;
      const __m256d av_v = _mm256_set1_pd(av);
      size_t j = 0;
      for (; j < m4; j += 4) {
        _mm256_storeu_pd(
            o_row + j,
            _mm256_add_pd(_mm256_loadu_pd(o_row + j),
                          _mm256_mul_pd(av_v, _mm256_loadu_pd(b_row + j))));
      }
      for (; j < m; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void Avx2GemmTbRows(const double* a, const double* b, double* o, size_t k,
                    size_t m, size_t r0, size_t r1) {
  const size_t k16 = k - k % kTbLanes;
  for (size_t i = r0; i < r1; ++i) {
    const double* a_row = a + i * k;
    double* o_row = o + i * m;
    for (size_t j = 0; j < m; ++j) {
      const double* b_row = b + j * k;
      // Four ymm accumulators hold the 16 reference lanes: acc0 = lanes
      // 0-3, acc1 = 4-7, acc2 = 8-11, acc3 = 12-15.
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (size_t p = 0; p < k16; p += kTbLanes) {
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(a_row + p),
                                                 _mm256_loadu_pd(b_row + p)));
        acc1 = _mm256_add_pd(
            acc1, _mm256_mul_pd(_mm256_loadu_pd(a_row + p + 4),
                                _mm256_loadu_pd(b_row + p + 4)));
        acc2 = _mm256_add_pd(
            acc2, _mm256_mul_pd(_mm256_loadu_pd(a_row + p + 8),
                                _mm256_loadu_pd(b_row + p + 8)));
        acc3 = _mm256_add_pd(
            acc3, _mm256_mul_pd(_mm256_loadu_pd(a_row + p + 12),
                                _mm256_loadu_pd(b_row + p + 12)));
      }
      // Reference fold-by-halves: h=8 -> acc0+=acc2, acc1+=acc3;
      // h=4 -> acc0+=acc1; h=2 and h=1 inside the low xmm.
      acc0 = _mm256_add_pd(acc0, acc2);
      acc1 = _mm256_add_pd(acc1, acc3);
      acc0 = _mm256_add_pd(acc0, acc1);
      __m128d lo = _mm256_castpd256_pd128(acc0);
      const __m128d hi = _mm256_extractf128_pd(acc0, 1);
      lo = _mm_add_pd(lo, hi);
      double acc = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
      for (size_t p = k16; p < k; ++p) acc += a_row[p] * b_row[p];
      o_row[j] = acc;
    }
  }
}

}  // namespace

const GemmKernels kAvx2Kernels = {
    /*name=*/"avx2",
    /*supported=*/true,
    /*pack_width=*/kW,
    /*pack_b=*/&Avx2PackB,
    /*gemm_rows=*/&Avx2GemmRows,
    /*gemm_ta_cols=*/&Avx2GemmTaCols,
    /*gemm_tb_rows=*/&Avx2GemmTbRows,
};

}  // namespace cdbtune::nn::simd

#else  // !(__AVX2__ && __FMA__)

namespace cdbtune::nn::simd {

const GemmKernels kAvx2Kernels = {
    /*name=*/"avx2",
    /*supported=*/false,
    /*pack_width=*/0,
    /*pack_b=*/nullptr,
    /*gemm_rows=*/nullptr,
    /*gemm_ta_cols=*/nullptr,
    /*gemm_tb_rows=*/nullptr,
};

}  // namespace cdbtune::nn::simd

#endif
