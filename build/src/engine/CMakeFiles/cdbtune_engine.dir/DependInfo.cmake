
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/btree.cc" "src/engine/CMakeFiles/cdbtune_engine.dir/btree.cc.o" "gcc" "src/engine/CMakeFiles/cdbtune_engine.dir/btree.cc.o.d"
  "/root/repo/src/engine/buffer_pool.cc" "src/engine/CMakeFiles/cdbtune_engine.dir/buffer_pool.cc.o" "gcc" "src/engine/CMakeFiles/cdbtune_engine.dir/buffer_pool.cc.o.d"
  "/root/repo/src/engine/disk_manager.cc" "src/engine/CMakeFiles/cdbtune_engine.dir/disk_manager.cc.o" "gcc" "src/engine/CMakeFiles/cdbtune_engine.dir/disk_manager.cc.o.d"
  "/root/repo/src/engine/mini_cdb.cc" "src/engine/CMakeFiles/cdbtune_engine.dir/mini_cdb.cc.o" "gcc" "src/engine/CMakeFiles/cdbtune_engine.dir/mini_cdb.cc.o.d"
  "/root/repo/src/engine/page.cc" "src/engine/CMakeFiles/cdbtune_engine.dir/page.cc.o" "gcc" "src/engine/CMakeFiles/cdbtune_engine.dir/page.cc.o.d"
  "/root/repo/src/engine/wal.cc" "src/engine/CMakeFiles/cdbtune_engine.dir/wal.cc.o" "gcc" "src/engine/CMakeFiles/cdbtune_engine.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/cdbtune_env.dir/DependInfo.cmake"
  "/root/repo/build/src/knobs/CMakeFiles/cdbtune_knobs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdbtune_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdbtune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
