#include "server/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace cdbtune::server::net {

namespace {

util::Status Errno(const char* what) {
  return util::Status::Internal(std::string(what) + ": " +
                                std::strerror(errno));
}

uint32_t ToEpoll(uint32_t interest) {
  uint32_t events = 0;
  if (interest & Ready::kRead) events |= EPOLLIN;
  if (interest & Ready::kWrite) events |= EPOLLOUT;
  // EPOLLERR/EPOLLHUP are always reported; no need to request them.
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t ready = 0;
  if (events & (EPOLLIN | EPOLLPRI)) ready |= Ready::kRead;
  if (events & EPOLLOUT) ready |= Ready::kWrite;
  if (events & (EPOLLERR | EPOLLHUP)) ready |= Ready::kError;
  return ready;
}

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

util::Status EventLoop::Init() {
  if (epoll_fd_ >= 0) {
    return util::Status::FailedPrecondition("EventLoop already initialized");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup_fd_ < 0) return Errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wakeup)");
  }
  return util::Status::Ok();
}

void EventLoop::Run() {
  CDBTUNE_CHECK_GE(epoll_fd_, 0);
  loop_thread_ = std::this_thread::get_id();
  running_.store(true);
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (true) {
    {
      util::MutexLock lock(tasks_mu_);
      if (stop_requested_) break;
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      CDBTUNE_LOG(Warning) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        uint64_t drained;
        // Nonblocking eventfd: EAGAIN just means another wave already read
        // the counter, which is fine — the wakeup did its job.
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // A handler earlier in this wave may have torn this fd's connection
      // down (e.g. a fatal error on a sibling); look the channel up fresh
      // and skip if gone.
      auto it = channels_.find(fd);
      if (it == channels_.end() || !it->second.handler) continue;
      it->second.handler(FromEpoll(events[i].events));
    }
    RunQueuedTasks();
  }
  running_.store(false);
}

void EventLoop::Stop() {
  {
    util::MutexLock lock(tasks_mu_);
    stop_requested_ = true;
  }
  Wakeup();
}

util::Status EventLoop::AddChannel(int fd, uint32_t interest,
                                   std::function<void(uint32_t)> handler) {
  CDBTUNE_DCHECK(!running_.load() || IsLoopThread());
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(add)");
  }
  channels_[fd] = Channel{std::move(handler), interest};
  return util::Status::Ok();
}

util::Status EventLoop::SetInterest(int fd, uint32_t interest) {
  CDBTUNE_DCHECK(!running_.load() || IsLoopThread());
  auto it = channels_.find(fd);
  if (it == channels_.end()) {
    return util::Status::NotFound("fd not registered with the loop");
  }
  if (it->second.interest == interest) return util::Status::Ok();
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  it->second.interest = interest;
  return util::Status::Ok();
}

void EventLoop::RemoveChannel(int fd) {
  CDBTUNE_DCHECK(!running_.load() || IsLoopThread());
  if (channels_.erase(fd) == 0) return;
  // Failure here is benign (the fd may already be closed); epoll drops
  // closed descriptors on its own.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::QueueTask(std::function<void()> task) {
  {
    util::MutexLock lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wakeup();
}

bool EventLoop::IsLoopThread() const {
  return running_.load() && std::this_thread::get_id() == loop_thread_;
}

void EventLoop::RunQueuedTasks() {
  // Swap the queue out under the lock, run lock-free: a task that calls
  // QueueTask (self-rescheduling) must not deadlock, and tasks routinely
  // take ranked locks far above kNetLoopTasks.
  std::deque<std::function<void()>> batch;
  {
    util::MutexLock lock(tasks_mu_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

void EventLoop::Wakeup() {
  if (wakeup_fd_ < 0) return;
  uint64_t one = 1;
  // EAGAIN means the counter is already nonzero — the loop will wake.
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace cdbtune::server::net
