#include "env/instance.h"

namespace cdbtune::env {

const char* DiskTypeName(DiskType type) {
  switch (type) {
    case DiskType::kHdd:
      return "HDD";
    case DiskType::kSsd:
      return "SSD";
    case DiskType::kNvm:
      return "NVM";
  }
  return "?";
}

HardwareSpec MakeInstance(std::string name, double ram_gb, double disk_gb,
                          DiskType disk, int cores) {
  HardwareSpec hw;
  hw.name = std::move(name);
  hw.ram_gb = ram_gb;
  hw.disk_gb = disk_gb;
  hw.disk_type = disk;
  hw.cpu_cores = cores;
  return hw;
}

HardwareSpec CdbA() { return MakeInstance("CDB-A", 8, 100); }
HardwareSpec CdbB() { return MakeInstance("CDB-B", 12, 100); }
HardwareSpec CdbC() { return MakeInstance("CDB-C", 12, 200); }
HardwareSpec CdbD() { return MakeInstance("CDB-D", 16, 200); }
HardwareSpec CdbE() { return MakeInstance("CDB-E", 32, 300); }

std::vector<HardwareSpec> CdbX1Variants() {
  std::vector<HardwareSpec> out;
  for (double ram : {4.0, 12.0, 32.0, 64.0, 128.0}) {
    out.push_back(MakeInstance("CDB-X1/" + std::to_string(static_cast<int>(ram)) + "G",
                               ram, 100));
  }
  return out;
}

std::vector<HardwareSpec> CdbX2Variants() {
  std::vector<HardwareSpec> out;
  for (double disk : {32.0, 64.0, 100.0, 256.0, 512.0}) {
    out.push_back(MakeInstance("CDB-X2/" + std::to_string(static_cast<int>(disk)) + "G",
                               12, disk));
  }
  return out;
}

}  // namespace cdbtune::env
