#include "engine/buffer_pool.h"

#include "util/check.h"

namespace cdbtune::engine {

namespace {
/// CPU cost of a buffer-pool hit (hash probe + latch).
constexpr VirtualNanos kHitCostNs = 250;
}  // namespace

BufferPool::BufferPool(DiskManager* disk, VirtualClock* clock,
                       size_t num_frames)
    : disk_(disk), clock_(clock) {
  CDBTUNE_CHECK(disk_ != nullptr && clock_ != nullptr);
  CDBTUNE_CHECK(num_frames > 0) << "buffer pool needs at least one frame";
  frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(num_frames - 1 - i);
  }
}

size_t BufferPool::dirty_pages() const {
  size_t n = 0;
  for (const auto& f : frames_) {
    if (f->page_id != kInvalidPageId && f->dirty) ++n;
  }
  return n;
}

util::StatusOr<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return util::Status::FailedPrecondition("all buffer frames pinned");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = *frames_[idx];
  frame.in_lru = false;
  CDBTUNE_CHECK(frame.pin_count == 0) << "pinned frame on LRU list";
  if (frame.dirty) {
    CDBTUNE_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, frame.page.raw()));
    ++pages_flushed_;
  }
  table_.erase(frame.page_id);
  ++evictions_;
  frame.page_id = kInvalidPageId;
  frame.dirty = false;
  return idx;
}

util::StatusOr<Page*> BufferPool::FetchPage(PageId page_id) {
  clock_->Advance(kHitCostNs);
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    ++hits_;
    Frame& frame = *frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return &frame.page;
  }
  ++misses_;
  auto victim = GetVictimFrame();
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame& frame = *frames_[idx];
  util::Status read = disk_->ReadPage(page_id, frame.page.raw());
  if (!read.ok()) {
    // The victim was already unlinked from the free list / LRU and the page
    // table; put it back on the free list or it leaks out of every
    // structure (found by CheckInvariants).
    free_frames_.push_back(idx);
    return read;
  }
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  table_[page_id] = idx;
  return &frame.page;
}

util::StatusOr<Page*> BufferPool::NewPage(PageId* page_id) {
  auto allocated = disk_->AllocatePage();
  if (!allocated.ok()) return allocated.status();
  auto victim = GetVictimFrame();
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame& frame = *frames_[idx];
  frame.page = Page();
  frame.page_id = allocated.value();
  frame.pin_count = 1;
  frame.dirty = true;
  table_[frame.page_id] = idx;
  *page_id = frame.page_id;
  return &frame.page;
}

void BufferPool::UnpinPage(PageId page_id, bool dirty) {
  auto it = table_.find(page_id);
  CDBTUNE_CHECK(it != table_.end()) << "unpin of uncached page " << page_id;
  Frame& frame = *frames_[it->second];
  CDBTUNE_CHECK(frame.pin_count > 0) << "unpin of unpinned page " << page_id;
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), it->second);
    frame.in_lru = true;
  }
}

size_t BufferPool::FlushSome(size_t budget) {
  size_t flushed = 0;
  for (size_t idx : lru_) {
    if (flushed >= budget) break;
    Frame& frame = *frames_[idx];
    if (frame.page_id == kInvalidPageId || !frame.dirty) continue;
    if (!disk_->WritePage(frame.page_id, frame.page.raw()).ok()) break;
    frame.dirty = false;
    ++pages_flushed_;
    ++flushed;
  }
  return flushed;
}

util::Status BufferPool::FlushAll() {
  for (auto& frame_ptr : frames_) {
    Frame& frame = *frame_ptr;
    if (frame.page_id == kInvalidPageId || !frame.dirty) continue;
    CDBTUNE_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, frame.page.raw()));
    frame.dirty = false;
    ++pages_flushed_;
  }
  CDBTUNE_DCHECK_OK(CheckInvariants());
  return util::Status::Ok();
}

util::Status BufferPool::CheckInvariants() const {
  auto violation = [](const std::string& what) {
    return util::Status::Internal("buffer pool invariant violated: " + what);
  };
  if (table_.size() + free_frames_.size() != frames_.size()) {
    return violation("cached + free frame counts do not cover the pool");
  }
  std::vector<char> is_free(frames_.size(), 0);
  for (size_t idx : free_frames_) {
    if (idx >= frames_.size()) return violation("free index out of range");
    if (is_free[idx]) return violation("frame on the free list twice");
    is_free[idx] = 1;
    const Frame& f = *frames_[idx];
    if (f.page_id != kInvalidPageId || f.pin_count != 0 || f.dirty ||
        f.in_lru) {
      return violation("free frame not fully reset");
    }
  }
  // lint: allow(nondet-iteration) — validator walk: every branch either
  // passes or returns a fixed-string violation, so hash order picks at most
  // which of several simultaneous corruptions is reported first; pass/fail
  // and all messages are order-independent.
  for (const auto& [page_id, idx] : table_) {
    if (idx >= frames_.size()) return violation("table index out of range");
    if (is_free[idx]) return violation("cached frame also on the free list");
    const Frame& f = *frames_[idx];
    if (f.page_id != page_id) {
      return violation("page table points at a frame holding another page");
    }
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = *frames_[i];
    if (f.pin_count < 0) return violation("negative pin count");
    if (f.page_id == kInvalidPageId) {
      if (!is_free[i]) return violation("empty frame missing from free list");
      continue;
    }
    auto it = table_.find(f.page_id);
    if (it == table_.end() || it->second != i) {
      return violation("cached frame missing from the page table");
    }
    if (f.in_lru && f.pin_count != 0) {
      return violation("pinned frame marked as LRU-resident");
    }
    if (!f.in_lru && f.pin_count == 0) {
      return violation("unpinned cached frame absent from the LRU list");
    }
  }
  std::vector<char> on_lru(frames_.size(), 0);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    size_t idx = *it;
    if (idx >= frames_.size()) return violation("LRU index out of range");
    if (on_lru[idx]) return violation("frame on the LRU list twice");
    on_lru[idx] = 1;
    const Frame& f = *frames_[idx];
    if (!f.in_lru) return violation("LRU node not marked in_lru");
    if (f.page_id == kInvalidPageId) return violation("free frame on LRU");
    if (f.lru_pos != it) return violation("stale lru_pos iterator");
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i]->in_lru && !on_lru[i]) {
      return violation("in_lru frame missing from the LRU list");
    }
  }
  return util::Status::Ok();
}

void BufferPool::CorruptPinCountForTest(PageId page_id, int delta) {
  auto it = table_.find(page_id);
  CDBTUNE_CHECK(it != table_.end()) << "corrupting uncached page " << page_id;
  frames_[it->second]->pin_count += delta;
}

void BufferPool::DropAll() {
  size_t num_frames = frames_.size();
  frames_.clear();
  free_frames_.clear();
  table_.clear();
  lru_.clear();
  frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(num_frames - 1 - i);
  }
  CDBTUNE_DCHECK_OK(CheckInvariants());
}

util::Status BufferPool::Resize(size_t num_frames) {
  CDBTUNE_CHECK(num_frames > 0) << "buffer pool needs at least one frame";
  for (const auto& frame : frames_) {
    if (frame->pin_count > 0) {
      return util::Status::FailedPrecondition("cannot resize with pinned pages");
    }
  }
  CDBTUNE_RETURN_IF_ERROR(FlushAll());
  frames_.clear();
  free_frames_.clear();
  table_.clear();
  lru_.clear();
  frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(num_frames - 1 - i);
  }
  CDBTUNE_DCHECK_OK(CheckInvariants());
  return util::Status::Ok();
}

}  // namespace cdbtune::engine
