
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/cdbtune.cc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/cdbtune.cc.o" "gcc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/cdbtune.cc.o.d"
  "/root/repo/src/tuner/controller.cc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/controller.cc.o" "gcc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/controller.cc.o.d"
  "/root/repo/src/tuner/memory_pool.cc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/memory_pool.cc.o" "gcc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/memory_pool.cc.o.d"
  "/root/repo/src/tuner/metrics_collector.cc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/metrics_collector.cc.o" "gcc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/metrics_collector.cc.o.d"
  "/root/repo/src/tuner/recommender.cc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/recommender.cc.o" "gcc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/recommender.cc.o.d"
  "/root/repo/src/tuner/reward.cc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/reward.cc.o" "gcc" "src/tuner/CMakeFiles/cdbtune_tuner.dir/reward.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/cdbtune_env.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/cdbtune_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/knobs/CMakeFiles/cdbtune_knobs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdbtune_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdbtune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cdbtune_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
