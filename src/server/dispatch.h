#ifndef CDBTUNE_SERVER_DISPATCH_H_
#define CDBTUNE_SERVER_DISPATCH_H_

#include <string>

#include "server/tuning_server.h"

namespace cdbtune::server {

/// Executes one protocol request line against `server` and returns the
/// response line ("OK ..." or "ERR ..."). Sets `*shutdown` when the line was
/// a SHUTDOWN request (the transport decides what shutting down means — the
/// socket server drains; the in-process driver just stops reading).
///
/// Verbs:
///   PING
///   OPEN   [engine=sim|mini] [workload=sysbench_rw|...] [seed=N] [steps=N]
///          [ram_gb=X] [disk_gb=X] [rows=N] [stress_s=X]
///   STEP   id=N [n=K]           — K tuning steps (default 1)
///   ROUND  [n=K]                — K concurrent all-session rounds
///   TRAIN  n=K                  — merge experiences + K gradient steps
///   STATUS [id=N]               — one session, or a summary of all
///   BEST_CONFIG id=N            — knobs differing from the engine default
///   CLOSE  id=N                 — finish session, deploy best config
///   SAVE   path=P               — atomic full-state checkpoint at P
///   RESTORE path=P              — rebuild the server from a checkpoint
///                                 (falls back past torn generations)
///   REBUILD [actor_hidden=128-96-64] [critic_embed=N]
///           [critic_hidden=256-64] [seed=N] [train=K]
///                               — warm-start a reshaped agent from the
///                                 experience pool (Table 6, live)
///   SHUTDOWN
std::string DispatchLine(TuningServer& server, const std::string& line,
                         bool* shutdown);

}  // namespace cdbtune::server

#endif  // CDBTUNE_SERVER_DISPATCH_H_
