// Lint fixture twin of bad_float_contract.cc: multiply-then-add with two
// explicit roundings (the §6-conformant shape in both scalar and vector
// form), plus one annotated FMA proving the allow() form works. Never
// compiled; tools/lint_selftest.py asserts zero active findings.

#include <immintrin.h>

namespace cdbtune::nn {

float MulThenAdd(float a, float b, float c) {
  float product = a * b;  // rounded once
  return product + c;     // rounded again — matches the scalar reference
}

__m256 VectorMulAdd(__m256 a, __m256 b, __m256 c) {
  return _mm256_add_ps(_mm256_mul_ps(a, b), c);
}

float ThroughputProbe(float a, float b, float c) {
  // lint: allow(float-contract) — FMA-port throughput probe: the numeric
  // result is discarded, only the timing is reported, so no §6-covered
  // output depends on the fused rounding.
  return __builtin_fma(a, b, c);
}

}  // namespace cdbtune::nn
