// Tests for the event-driven TCP front end (src/server/net/): framing
// robustness against torn/oversized/garbage streams, the epoll EventLoop's
// ownership and task-queue contract, and the TcpServer's back-pressure
// behavior — typed BUSY sheds, slow-loris drops, and a stalled or killed
// client never blocking other sessions. The AF_UNIX shed-path regression
// (non-blocking busy notice) lives here too, next to the transport
// telemetry it shares.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "env/simulated_cdb.h"
#include "server/dispatch.h"
#include "server/io/line_socket.h"
#include "server/io/socket_server.h"
#include "server/net/event_loop.h"
#include "server/net/frame.h"
#include "server/net/frame_client.h"
#include "server/net/tcp_server.h"
#include "server/tuning_server.h"
#include "tuner/cdbtune.h"

namespace cdbtune::server {
namespace {

using net::EncodeFrame;
using net::Frame;
using net::FrameClient;
using net::FrameDecoder;
using net::FrameType;

// --- Framing -----------------------------------------------------------------

TEST(FrameTest, EncodeThenDecodeRoundTrips) {
  FrameDecoder decoder;
  const std::string wire = EncodeFrame(FrameType::kRequest, "PING") +
                           EncodeFrame(FrameType::kResponse, "OK pong=1") +
                           EncodeFrame(FrameType::kBusy, "") +
                           EncodeFrame(FrameType::kError, "bad");
  decoder.Feed(wire.data(), wire.size());

  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.payload, "PING");
  ASSERT_TRUE(*decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.payload, "OK pong=1");
  ASSERT_TRUE(*decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kBusy);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(*decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.payload, "bad");

  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got) << "drained decoder must report need-more-bytes";
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameTest, DecoderReassemblesByteAtATimeTornStream) {
  // The worst torn-read case: every byte of a three-frame stream arrives in
  // its own Feed. No byte boundary may confuse the decoder.
  const std::string wire =
      EncodeFrame(FrameType::kRequest, "OPEN engine=sim") +
      EncodeFrame(FrameType::kRequest, "") +
      EncodeFrame(FrameType::kRequest, std::string(300, 'x'));
  FrameDecoder decoder;
  std::vector<std::string> payloads;
  for (char byte : wire) {
    decoder.Feed(&byte, 1);
    Frame frame;
    auto got = decoder.Next(&frame);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (*got) payloads.push_back(frame.payload);
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "OPEN engine=sim");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], std::string(300, 'x'));
}

TEST(FrameTest, DecoderRejectsBadMagicAndStaysPoisoned) {
  FrameDecoder decoder;
  std::string wire = EncodeFrame(FrameType::kRequest, "PING");
  wire[0] = 'X';  // Corrupt the magic.
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("magic"), std::string::npos)
      << got.status().ToString();
  // Sticky: even fresh valid bytes cannot resynchronize the stream.
  const std::string good = EncodeFrame(FrameType::kRequest, "PING");
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(FrameTest, DecoderRejectsBadVersionAndReservedBytes) {
  {
    FrameDecoder decoder;
    std::string wire = EncodeFrame(FrameType::kRequest, "PING");
    wire[4] = 99;  // Unknown version.
    decoder.Feed(wire.data(), wire.size());
    Frame frame;
    auto got = decoder.Next(&frame);
    ASSERT_FALSE(got.ok());
    EXPECT_NE(got.status().message().find("version"), std::string::npos);
  }
  {
    FrameDecoder decoder;
    std::string wire = EncodeFrame(FrameType::kRequest, "PING");
    wire[6] = 1;  // Nonzero reserved bytes.
    decoder.Feed(wire.data(), wire.size());
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
}

TEST(FrameTest, DecoderRejectsOversizedDeclaredLengthFromHeaderAlone) {
  // A hostile length prefix must be rejected from the 12 header bytes —
  // before any payload arrives, so nothing is ever buffered for it.
  FrameDecoder decoder(/*max_payload=*/1024);
  std::string wire = EncodeFrame(FrameType::kRequest, "x");
  wire[8] = static_cast<char>(0xFF);  // length = 0xFFFFFF01: ~4 GB declared.
  wire[9] = static_cast<char>(0xFF);
  wire[10] = static_cast<char>(0xFF);
  wire[11] = static_cast<char>(0xFF);
  decoder.Feed(wire.data(), net::kFrameHeaderBytes);  // Header only.
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("length"), std::string::npos)
      << got.status().ToString();
}

TEST(FrameTest, DecoderAcceptsPayloadAtExactlyTheCap) {
  FrameDecoder decoder(/*max_payload=*/64);
  const std::string wire =
      EncodeFrame(FrameType::kRequest, std::string(64, 'y'));
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.payload.size(), 64u);
}

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoopTest, RunsQueuedTasksOnLoopThreadAndServesChannels) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::thread runner([&] { loop.Run(); });

  // Cross-thread tasks execute on the loop thread, in order.
  std::atomic<int> ran{0};
  std::atomic<bool> on_loop_thread{false};
  loop.QueueTask([&] {
    on_loop_thread.store(loop.IsLoopThread());
    ran.fetch_add(1);
  });

  // A pipe channel: registration must happen on the loop thread, so it goes
  // through the task queue; the read handler fires when bytes arrive.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> reads{0};
  loop.QueueTask([&] {
    ASSERT_TRUE(loop.AddChannel(fds[0], net::Ready::kRead,
                                [&](uint32_t ready) {
                                  EXPECT_TRUE(ready & net::Ready::kRead);
                                  char buf[8];
                                  (void)!::read(fds[0], buf, sizeof(buf));
                                  reads.fetch_add(1);
                                })
                    .ok());
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  for (int i = 0; i < 500 && (ran.load() == 0 || reads.load() == 0); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(on_loop_thread.load());
  EXPECT_GE(reads.load(), 1);

  loop.QueueTask([&] { loop.RemoveChannel(fds[0]); });
  loop.Stop();
  runner.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- TcpServer ---------------------------------------------------------------

/// One standard model trained once and shared by every test in this binary
/// (its weights are only ever cloned, never mutated).
tuner::CdbTuner& SharedTrainedTuner() {
  struct Model {
    std::unique_ptr<env::SimulatedCdb> db;
    std::unique_ptr<tuner::CdbTuner> tuner;
  };
  static Model* model = [] {
    auto* m = new Model;
    m->db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 71);
    auto space = knobs::KnobSpace::AllTunable(&m->db->registry());
    tuner::CdbTuneOptions options;
    options.max_offline_steps = 40;
    options.steps_per_episode = 10;
    options.seed = 71;
    m->tuner = std::make_unique<tuner::CdbTuner>(m->db.get(), space, options);
    m->tuner->OfflineTrain(workload::SysbenchReadWrite());
    return m;
  }();
  return *model->tuner;
}

/// TuningServer + Dispatcher + TcpServer wired the way cdbtune_serve does
/// it, on an ephemeral port.
struct TcpFixture {
  TuningServer server;
  Dispatcher dispatcher{&server};
  std::unique_ptr<net::TcpServer> front;

  explicit TcpFixture(net::TcpServerOptions options = {}) {
    EXPECT_TRUE(server.AdoptModel(SharedTrainedTuner()).ok());
    front = std::make_unique<net::TcpServer>(&dispatcher, options);
    dispatcher.RegisterTransport(front.get());
  }

  util::Status Start() { return front->Start(); }
  uint16_t port() const { return front->port(); }
};

/// Returns a connected client, or null (with a failed EXPECT) on error.
std::unique_ptr<FrameClient> ConnectTo(const TcpFixture& fixture) {
  auto client = std::make_unique<FrameClient>();
  util::Status connected = client->Connect("127.0.0.1", fixture.port());
  EXPECT_TRUE(connected.ok()) << connected.ToString();
  if (!connected.ok()) return nullptr;
  return client;
}

TEST(TcpServerTest, ServesSessionLifecycleOverBinaryFraming) {
  TcpFixture fixture;
  ASSERT_TRUE(fixture.Start().ok());
  auto client = ConnectTo(fixture);
  ASSERT_NE(client, nullptr);

  auto pong = client->Call("PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "OK pong=1");

  auto opened = client->Call("OPEN engine=sim seed=7 steps=2");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->rfind("OK id=0", 0), 0u) << *opened;
  auto stepped = client->Call("STEP id=0 n=2");
  ASSERT_TRUE(stepped.ok());
  EXPECT_EQ(stepped->rfind("OK id=0 step=2", 0), 0u) << *stepped;

  // STATUS over TCP reports this transport's own telemetry.
  auto status = client->Call("STATUS");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("tcp_conns=1"), std::string::npos) << *status;
  EXPECT_NE(status->find("tcp_accepted=1"), std::string::npos) << *status;
  EXPECT_NE(status->find("tcp_frames_in="), std::string::npos) << *status;

  auto closed = client->Call("CLOSE id=0");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->rfind("OK id=0", 0), 0u) << *closed;

  // SHUTDOWN over the binary transport unblocks WaitForShutdown.
  auto bye = client->Call("SHUTDOWN");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK bye=1");
  fixture.front->WaitForShutdown();
  EXPECT_TRUE(fixture.front->shutdown_requested());
  fixture.server.DrainAndStop();
  fixture.front->Stop();
}

TEST(TcpServerTest, PipeliningBeyondTheCapStillAnswersEveryRequest) {
  // Regression for the decoder-stall hazard: a burst larger than the
  // per-connection pipelining cap arrives in one write, so the tail frames
  // sit in the decoder buffer with no kernel bytes behind them — the server
  // must keep answering as dispatch drains, not wait for a read event that
  // will never come.
  TcpFixture fixture;
  ASSERT_TRUE(fixture.Start().ok());
  auto client = ConnectTo(fixture);
  ASSERT_NE(client, nullptr);

  constexpr int kBurst = 100;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += EncodeFrame(FrameType::kRequest, "PING");
  }
  ASSERT_TRUE(client->SendBytes(burst).ok());
  for (int i = 0; i < kBurst; ++i) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << "reply " << i << ": "
                            << frame.status().ToString();
    ASSERT_EQ(frame->type, FrameType::kResponse) << "reply " << i;
    EXPECT_EQ(frame->payload, "OK pong=1");
  }
  fixture.front->Stop();
}

TEST(TcpServerTest, ShedsConnectionsOverBudgetWithTypedBusyFrame) {
  net::TcpServerOptions options;
  options.max_connections = 1;
  TcpFixture fixture(options);
  ASSERT_TRUE(fixture.Start().ok());

  auto first = ConnectTo(fixture);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->Call("PING").ok());  // First connection is serving.

  // The second connection must be shed with a typed BUSY frame, then
  // closed — never queued, never blocking the reactor.
  auto second = ConnectTo(fixture);
  ASSERT_NE(second, nullptr);
  auto frame = second->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kBusy);
  EXPECT_FALSE(second->ReadFrame().ok()) << "shed connection must close";

  // The surviving connection is unaffected, and telemetry shows the shed.
  auto status = first->Call("STATUS");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("tcp_shed=1"), std::string::npos) << *status;
  fixture.front->Stop();
}

TEST(TcpServerTest, MalformedStreamGetsErrorFrameThenClose) {
  TcpFixture fixture;
  ASSERT_TRUE(fixture.Start().ok());
  auto client = ConnectTo(fixture);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->SendBytes("GET / HTTP/1.1\r\n\r\n").ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kError);
  EXPECT_NE(frame->payload.find("magic"), std::string::npos)
      << frame->payload;
  EXPECT_FALSE(client->ReadFrame().ok()) << "poisoned connection must close";
  fixture.front->Stop();
}

TEST(TcpServerTest, OversizedDeclaredLengthIsRejectedBeforeBuffering) {
  net::TcpServerOptions options;
  options.max_frame_bytes = 1024;
  TcpFixture fixture(options);
  ASSERT_TRUE(fixture.Start().ok());
  auto client = ConnectTo(fixture);
  ASSERT_NE(client, nullptr);
  std::string header = EncodeFrame(FrameType::kRequest, "");
  header[8] = static_cast<char>(0xFF);  // Declare a ~4 GB payload.
  header[9] = static_cast<char>(0xFF);
  header[10] = static_cast<char>(0xFF);
  header[11] = static_cast<char>(0x7F);
  ASSERT_TRUE(client->SendBytes(header).ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kError);
  EXPECT_NE(frame->payload.find("length"), std::string::npos)
      << frame->payload;
  fixture.front->Stop();
}

TEST(TcpServerTest, SlowLorisClientIsDroppedWithoutBlockingOthers) {
  // A client that floods requests and never drains its replies must be
  // dropped the moment its bounded send queue would overflow — while other
  // connections keep being served the whole time.
  net::TcpServerOptions options;
  options.sendq_bytes = 512;
  TcpFixture fixture(options);
  ASSERT_TRUE(fixture.Start().ok());

  auto loris = ConnectTo(fixture);
  ASSERT_NE(loris, nullptr);
  // Shrink the loris's receive window so the server's kernel-side buffer
  // fills fast and responses land in the bounded send queue.
  int tiny = 1;
  ASSERT_EQ(::setsockopt(loris->fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
                         sizeof(tiny)),
            0);
  std::atomic<bool> loris_done{false};
  std::thread flood([&] {
    // Write request frames until the server drops us (send fails). Bounded
    // volume so a regression fails the test instead of wedging it.
    const std::string ping = EncodeFrame(FrameType::kRequest, "PING");
    std::string chunk;
    for (int i = 0; i < 64; ++i) chunk += ping;
    for (int i = 0; i < 4096; ++i) {
      if (!loris->SendBytes(chunk).ok()) break;
    }
    loris_done.store(true);
  });

  // Meanwhile a well-behaved client keeps getting served, and eventually
  // observes the loris's sendq overflow in the transport telemetry.
  auto observer = ConnectTo(fixture);
  ASSERT_NE(observer, nullptr);
  bool dropped = false;
  for (int i = 0; i < 2000 && !dropped; ++i) {
    auto status = observer->Call("STATUS");
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    dropped = status->find("tcp_sendq_drops=0") == std::string::npos;
    if (!dropped) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(dropped) << "slow-loris connection was never shed";
  flood.join();
  EXPECT_TRUE(loris_done.load());
  fixture.front->Stop();
}

TEST(TcpServerTest, KilledClientMidEpisodeDoesNotDisturbOtherSessions) {
  TcpFixture fixture;
  ASSERT_TRUE(fixture.Start().ok());

  auto doomed = ConnectTo(fixture);
  ASSERT_NE(doomed, nullptr);
  auto opened = doomed->Call("OPEN engine=sim seed=11 steps=3");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->rfind("OK id=0", 0), 0u) << *opened;
  // Fire a STEP and vanish before the response: the worker's completion
  // must be dropped silently when the connection id no longer resolves.
  ASSERT_TRUE(doomed->SendFrame(FrameType::kRequest, "STEP id=0").ok());
  doomed->Close();

  auto survivor = ConnectTo(fixture);
  ASSERT_NE(survivor, nullptr);
  auto pong = survivor->Call("PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "OK pong=1");
  // The session itself outlives its transport connection (sessions are
  // owned by the TuningServer, not the socket): a new connection can
  // observe and close it.
  auto status = survivor->Call("STATUS id=0");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rfind("OK id=0", 0), 0u) << *status;
  auto closed = survivor->Call("CLOSE id=0");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->rfind("OK id=0", 0), 0u) << *closed;
  fixture.front->Stop();
}

// Transport determinism: the same session spec stepped over the binary TCP
// transport and through the in-process dispatcher must produce bitwise
// identical step responses — the wire format adds no nondeterminism. Gated
// behind CDBTUNE_NET=epoll (the dedicated ctest leg) because it runs full
// episodes on two servers.
TEST(TcpServerTest, EpisodesOverTcpMatchInProcessBitwise) {
  const char* net_mode = std::getenv("CDBTUNE_NET");
  if (net_mode == nullptr || std::string(net_mode) != "epoll") {
    GTEST_SKIP() << "set CDBTUNE_NET=epoll to run the transport leg";
  }

  const std::vector<std::string> script = {
      "OPEN engine=sim workload=sysbench_rw seed=42 steps=3",
      "STEP id=0", "STEP id=0", "STEP id=0", "STATUS id=0",
      "BEST_CONFIG id=0", "CLOSE id=0"};

  // In-process reference.
  TuningServer reference;
  ASSERT_TRUE(reference.AdoptModel(SharedTrainedTuner()).ok());
  std::vector<std::string> expected;
  bool shutdown = false;
  for (const std::string& line : script) {
    expected.push_back(DispatchLine(reference, line, &shutdown));
  }

  // The same script over epoll/TCP with four concurrent idle connections
  // sharing the reactor (they must not perturb the served session).
  TcpFixture fixture;
  ASSERT_TRUE(fixture.Start().ok());
  std::vector<std::unique_ptr<FrameClient>> idle;
  for (int i = 0; i < 4; ++i) {
    auto extra = std::make_unique<FrameClient>();
    ASSERT_TRUE(extra->Connect("127.0.0.1", fixture.port()).ok());
    ASSERT_TRUE(extra->Call("PING").ok());
    idle.push_back(std::move(extra));
  }
  auto client = ConnectTo(fixture);
  ASSERT_NE(client, nullptr);
  for (size_t i = 0; i < script.size(); ++i) {
    auto reply = client->Call(script[i]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, expected[i]) << "diverged on: " << script[i];
  }
  fixture.front->Stop();
}

// --- AF_UNIX shed path -------------------------------------------------------

// Regression for the accept-loop shed path: the busy notice to a refused
// connection used a blocking send, so a client that connected and never
// read could park the acceptor forever. The notice is now best-effort
// non-blocking (Socket::TrySendLine) — a stalled refused client must not
// stop later connections from being accepted or refused.
TEST(SocketServerShedTest, RefusedConnectionsGetBusyNoticeWithoutBlocking) {
  TuningServer server;
  ASSERT_TRUE(server.AdoptModel(SharedTrainedTuner()).ok());
  Dispatcher dispatcher(&server);
  io::SocketServerOptions options;
  options.socket_name = "cdbtune-net-shed-" + std::to_string(::getpid());
  options.worker_threads = 1;
  options.connection_queue = 1;
  io::SocketServer front(&dispatcher, options);
  dispatcher.RegisterTransport(&front);
  ASSERT_TRUE(front.Start().ok());

  // Occupy the single worker, then fill the single queue slot.
  auto busy_worker = io::Socket::Connect(options.socket_name);
  ASSERT_TRUE(busy_worker.ok());
  ASSERT_TRUE(busy_worker->SendLine("PING").ok());
  ASSERT_TRUE(busy_worker->RecvLine().ok());  // Worker now owns this conn.
  auto queued = io::Socket::Connect(options.socket_name);
  ASSERT_TRUE(queued.ok());

  // Refused connections: one that reads its notice, one that never reads.
  // The non-reader must not wedge the acceptor (the notice send is
  // non-blocking), proven by the acceptor still refusing the next one.
  auto refused_mute = io::Socket::Connect(options.socket_name);
  ASSERT_TRUE(refused_mute.ok());
  auto refused_reader = io::Socket::Connect(options.socket_name);
  ASSERT_TRUE(refused_reader.ok());
  auto notice = refused_reader->RecvLine();
  ASSERT_TRUE(notice.ok()) << notice.status().ToString();
  EXPECT_EQ(notice->rfind("ERR", 0), 0u) << *notice;
  EXPECT_NE(notice->find("busy"), std::string::npos) << *notice;

  // The occupied worker's connection still serves, and STATUS through it
  // reports the sheds via the unix transport's telemetry.
  ASSERT_TRUE(busy_worker->SendLine("STATUS").ok());
  auto status = busy_worker->RecvLine();
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("unix_shed="), std::string::npos) << *status;
  EXPECT_EQ(status->find("unix_shed=0"), std::string::npos) << *status;

  front.Stop();
  server.DrainAndStop();
}

}  // namespace
}  // namespace cdbtune::server
