#include "tuner/cdbtune.h"

#include <algorithm>
#include <cmath>
// lint: allow(raw-checkpoint-write) — std::ifstream only: loads go
// through ReadFile/ifstream; every write goes through persist.
#include <fstream>
#include <sstream>

#include "persist/atomic_file.h"
#include "safety/apply.h"
#include "tuner/tuning_session.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stats.h"

namespace cdbtune::tuner {

namespace {

/// PolicySource over the tuner's own agent: exploration noise comes from
/// the agent's Ornstein-Uhlenbeck process, exactly as the pre-session
/// online loop behaved.
class AgentPolicy final : public PolicySource {
 public:
  AgentPolicy(rl::DdpgAgent* agent, const std::vector<double>* best_action)
      : agent_(agent), best_action_(best_action) {}

  std::vector<double> ProposeAction(const std::vector<double>& state,
                                    bool explore) override {
    return agent_->SelectAction(state, explore);
  }

  std::vector<double> BestKnownAction() const override {
    return *best_action_;
  }

 private:
  rl::DdpgAgent* agent_;
  const std::vector<double>* best_action_;
};

/// ExperienceSink that fine-tunes immediately: every recorded step lands in
/// the durable memory pool and the agent's replay, followed by one gradient
/// step — online tuning keeps learning from the user's workload.
class FineTuneSink final : public ExperienceSink {
 public:
  FineTuneSink(MemoryPool* pool, rl::DdpgAgent* agent)
      : pool_(pool), agent_(agent) {}

  void Record(Experience experience) override {
    rl::Transition transition = experience.transition;
    pool_->Add(std::move(experience));
    agent_->Observe(std::move(transition));
    agent_->TrainStep();
  }

 private:
  MemoryPool* pool_;
  rl::DdpgAgent* agent_;
};

}  // namespace

CdbTuner::CdbTuner(env::DbInterface* db, knobs::KnobSpace space,
                   CdbTuneOptions options)
    : db_(db),
      space_(std::move(space)),
      options_(std::move(options)),
      recommender_(&space_) {
  CDBTUNE_CHECK(db_ != nullptr);
  options_.ddpg.state_dim = env::kNumInternalMetrics;
  options_.ddpg.action_dim = space_.action_dim();
  options_.ddpg.seed = options_.seed;
  agent_ = std::make_unique<rl::DdpgAgent>(options_.ddpg);
}

void CdbTuner::SetDatabase(env::DbInterface* db) {
  CDBTUNE_CHECK(db != nullptr);
  CDBTUNE_CHECK(db->registry().size() == space_.registry().size())
      << "cross-testing requires the same knob catalog";
  db_ = db;
}

double CdbTuner::Score(const PerfPoint& initial, const PerfPoint& point) const {
  CDBTUNE_CHECK(initial.throughput > 0.0 && initial.latency > 0.0);
  return options_.throughput_coeff * (point.throughput / initial.throughput) +
         options_.latency_coeff * (initial.latency / std::max(1e-9, point.latency));
}

util::Status CdbTuner::SaveModel(const std::string& prefix) const {
  CDBTUNE_RETURN_IF_ERROR(agent_->Save(prefix));
  std::ostringstream os;
  os.precision(17);
  collector_.SaveState(os);
  os << best_action_score_ << "\n" << best_offline_action_.size() << "\n";
  for (double a : best_offline_action_) os << a << " ";
  os << "\n";
  return persist::AtomicWriteFile(prefix + ".meta", os.str());
}

util::Status CdbTuner::LoadModel(const std::string& prefix) {
  CDBTUNE_RETURN_IF_ERROR(agent_->Load(prefix));
  std::ifstream is(prefix + ".meta");
  if (!is.good()) return util::Status::NotFound("cannot open " + prefix + ".meta");
  collector_.LoadState(is);
  size_t n = 0;
  is >> best_action_score_ >> n;
  if (is.fail() || n > space_.action_dim() * 4) {
    return util::Status::Internal("malformed model meta file");
  }
  best_offline_action_.assign(n, 0.0);
  for (double& a : best_offline_action_) is >> a;
  if (is.fail()) return util::Status::Internal("malformed model meta file");
  return util::Status::Ok();
}

void CdbTuner::BootstrapFromPool(const MemoryPool& pool, int gradient_steps) {
  for (size_t i = 0; i < pool.size(); ++i) {
    const Experience& e = pool.at(i);
    if (e.transition.action.size() != space_.action_dim()) continue;
    agent_->Observe(e.transition);
  }
  for (int i = 0; i < gradient_steps; ++i) agent_->TrainStep();
}

double CdbTuner::EvaluateGreedy(const workload::WorkloadSpec& workload,
                                const std::vector<double>& state,
                                const knobs::Config& base_config,
                                const PerfPoint& initial,
                                std::vector<double>* action_out) {
  std::vector<double> action = agent_->SelectAction(state, /*explore=*/false);
  knobs::Config config = recommender_.BuildConfig(action, base_config);
  if (!recommender_.Deploy(*db_, config).ok()) return -1e300;
  env::StressResult stress;
  if (!Stress(workload, &stress)) return -1e300;
  if (action_out != nullptr) *action_out = std::move(action);
  return Score(initial, MetricsCollector::ToPerfPoint(stress.external));
}

bool CdbTuner::Stress(const workload::WorkloadSpec& workload,
                      env::StressResult* result) {
  auto outcome = db_->RunStress(workload, options_.stress_duration_s);
  if (!outcome.ok()) {
    CDBTUNE_LOG(Warning) << "stress test failed: "
                         << outcome.status().ToString();
    return false;
  }
  *result = std::move(outcome.value());
  return true;
}

OfflineTrainResult CdbTuner::OfflineTrain(
    const workload::WorkloadSpec& workload) {
  OfflineTrainResult out;
  RewardFunction reward(options_.reward_type, options_.throughput_coeff,
                        options_.latency_coeff);

  // Baseline: default configuration performance (D_0 in Section 4.2).
  db_->Reset();
  const knobs::Config base_config = db_->registry().DefaultConfig();
  env::StressResult stress;
  if (!Stress(workload, &stress)) return out;
  out.initial = MetricsCollector::ToPerfPoint(stress.external);
  reward.SetInitial(out.initial);
  out.best = out.initial;
  out.best_config = db_->current_config();

  std::vector<double> state = collector_.Process(stress);
  PerfPoint prev_perf = out.initial;
  int episode_step = 0;
  int calm_streak = 0;
  util::Ema score_ema(options_.convergence_ema_alpha);
  double last_score = score_ema.Add(Score(out.initial, out.initial));

  util::Rng explore_rng(options_.seed ^ 0xC0FFEE);
  for (int step = 1; step <= options_.max_offline_steps; ++step) {
    // Action source: mostly the noisy policy, with a decaying share of
    // uniform cold-start exploration and occasional refinement around the
    // best experience in the memory pool.
    double progress = static_cast<double>(step) /
                      std::max(1.0, 0.6 * options_.max_offline_steps);
    double p_random =
        options_.random_action_prob * std::max(0.0, 1.0 - progress);
    std::vector<double> action;
    if (explore_rng.Bernoulli(p_random)) {
      action.resize(space_.action_dim());
      for (double& a : action) a = explore_rng.Uniform();
    } else if (!best_offline_action_.empty() &&
               explore_rng.Bernoulli(options_.incumbent_explore_prob)) {
      action = best_offline_action_;
      for (double& a : action) {
        a = std::clamp(a + explore_rng.Gaussian(0.0, 0.05), 0.0, 1.0);
      }
    } else {
      action = agent_->SelectAction(state, /*explore=*/true);
    }
    knobs::Config config = recommender_.BuildConfig(action, base_config);
    util::Status deploy = recommender_.Deploy(*db_, config);

    StepRecord record;
    record.step = step;
    double r;
    std::vector<double> next_state;
    bool terminal = false;

    if (!deploy.ok()) {
      // Crash (kCrashed) or rejection: large negative reward, episode ends,
      // instance restarts on its previous healthy configuration.
      ++out.crashes;
      r = reward.crash_reward();
      next_state = state;  // The restarted instance looks like before.
      terminal = true;
      record.crashed = true;
      record.throughput = 0.0;
      record.latency = 0.0;
    } else {
      if (!Stress(workload, &stress)) break;
      PerfPoint perf = MetricsCollector::ToPerfPoint(stress.external);
      r = std::clamp(reward.Compute(prev_perf, perf), -options_.reward_clip,
                     options_.reward_clip);
      next_state = collector_.Process(stress);
      record.throughput = perf.throughput;
      record.latency = perf.latency;

      double score = Score(out.initial, perf);
      if (score > Score(out.initial, out.best)) {
        out.best = perf;
        out.best_config = db_->current_config();
      }
      // Remember the best experience in the pool as an online candidate.
      if (score > best_action_score_) {
        best_action_score_ = score;
        best_offline_action_ = action;
      }
      // Convergence: |smoothed score change| below threshold for `window`
      // consecutive steps (Appendix C.1.1's 0.5% rule, applied to an EMA of
      // the trajectory because individual steps carry exploration noise).
      double smoothed = score_ema.Add(score);
      double rel_change = std::fabs(smoothed - last_score) /
                          std::max(1e-9, std::fabs(last_score));
      calm_streak = rel_change < options_.convergence_threshold
                        ? calm_streak + 1
                        : 0;
      if (calm_streak >= options_.convergence_window &&
          out.convergence_iteration < 0) {
        out.convergence_iteration = step;
      }
      last_score = smoothed;
      prev_perf = perf;
    }
    record.reward = r;
    out.history.push_back(record);
    out.iterations = step;

    rl::Transition t;
    t.state = state;
    t.action = action;
    t.reward = r * options_.reward_scale;
    t.next_state = next_state;
    t.terminal = terminal;
    Experience exp;
    exp.transition = t;
    exp.workload_name = workload.name;
    exp.instance_name = db_->hardware().name;
    exp.throughput = record.throughput;
    exp.latency = record.latency;
    pool_.Add(exp);
    agent_->Observe(std::move(t));

    for (int i = 0; i < options_.train_iters_per_step; ++i) {
      agent_->TrainStep();
    }
    agent_->DecayNoise();
    state = std::move(next_state);

    // Episode boundary: restart from the shipped defaults, like the paper's
    // per-step instance restarts during training.
    ++episode_step;
    if (terminal || episode_step >= options_.steps_per_episode) {
      episode_step = 0;
      db_->Reset();
      if (!Stress(workload, &stress)) break;
      prev_perf = MetricsCollector::ToPerfPoint(stress.external);
      state = collector_.Process(stress);

      // Best-checkpoint selection: score the greedy policy from the
      // default-config state and snapshot the weights when it improves.
      if (options_.eval_interval > 0) {
        std::vector<double> greedy_action;
        double eval = EvaluateGreedy(workload, state, base_config, out.initial,
                                     &greedy_action);
        if (eval > snapshot_score_) {
          snapshot_score_ = eval;
          if (snapshot_ == nullptr) {
            snapshot_ = std::make_unique<rl::DdpgAgent>(options_.ddpg);
          }
          snapshot_->CloneWeightsFrom(*agent_);
          if (eval > best_action_score_) {
            best_action_score_ = eval;
            best_offline_action_ = std::move(greedy_action);
          }
        }
        // Put the instance back on defaults for the new episode. The
        // shipped defaults always start, so a failure here is a bug worth
        // hearing about rather than silently tuning from the wrong state.
        util::Status reset_status = safety::ApplyConfig(*db_, base_config);
        if (!reset_status.ok()) {
          CDBTUNE_LOG(Warning) << "resetting to defaults after evaluation "
                                  "failed: "
                               << reset_status.ToString();
        }
      }
    }
  }

  // Ship the best-validated model, not the last gradient step.
  if (options_.eval_interval > 0) {
    db_->Reset();
    if (Stress(workload, &stress)) {
      std::vector<double> final_state = collector_.Process(stress);
      std::vector<double> final_action;
      double final_score = EvaluateGreedy(workload, final_state, base_config,
                                          out.initial, &final_action);
      if (final_score > snapshot_score_) {
        snapshot_score_ = final_score;
        if (final_score > best_action_score_) {
          best_action_score_ = final_score;
          best_offline_action_ = std::move(final_action);
        }
      } else if (snapshot_ != nullptr) {
        agent_->CloneWeightsFrom(*snapshot_);
      }
    }
    db_->Reset();
  }
  return out;
}

OnlineTuneResult CdbTuner::OnlineTune(const workload::WorkloadSpec& workload,
                                      int max_steps) {
  if (max_steps <= 0) max_steps = options_.online_max_steps;

  TuningSessionOptions session_options;
  session_options.max_steps = max_steps;
  session_options.stress_duration_s = options_.stress_duration_s;
  session_options.reward_type = options_.reward_type;
  session_options.throughput_coeff = options_.throughput_coeff;
  session_options.latency_coeff = options_.latency_coeff;
  session_options.reward_clip = options_.reward_clip;
  session_options.reward_scale = options_.reward_scale;
  session_options.safety = options_.safety;

  AgentPolicy policy(agent_.get(), &best_offline_action_);
  FineTuneSink sink(&pool_, agent_.get());
  TuningSession session(db_, space_, workload, &collector_, &policy, &sink,
                        session_options);
  if (!session.Begin().ok()) return session.result();
  while (session.phase() == SessionPhase::kTuning) {
    if (!session.Step().ok()) break;
  }
  return session.result();
}

}  // namespace cdbtune::tuner
