#include <cmath>
#include <memory>
#include <sstream>

#include "gtest/gtest.h"
#include "nn/layer.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/random.h"

namespace cdbtune::nn {
namespace {

/// Checks analytic input gradients of `net` against central differences on
/// a scalar loss L = sum(output). Layers with stochastic behavior must be
/// run in deterministic (eval) mode by the caller.
void CheckInputGradient(Sequential& net, const Matrix& input, bool training,
                        double tolerance = 1e-6) {
  Matrix out = net.Forward(input, training);
  Matrix ones(out.rows(), out.cols(), 1.0);
  net.ZeroGrad();
  Matrix analytic = net.Backward(ones);

  const double eps = 1e-6;
  Matrix x = input;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      double saved = x.at(r, c);
      x.at(r, c) = saved + eps;
      double plus = net.Forward(x, training).Sum();
      x.at(r, c) = saved - eps;
      double minus = net.Forward(x, training).Sum();
      x.at(r, c) = saved;
      double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic.at(r, c), numeric, tolerance)
          << "at (" << r << "," << c << ")";
    }
  }
}

/// Checks analytic parameter gradients against central differences.
void CheckParamGradients(Sequential& net, const Matrix& input, bool training,
                         double tolerance = 1e-6) {
  net.ZeroGrad();
  Matrix out = net.Forward(input, training);
  Matrix ones(out.rows(), out.cols(), 1.0);
  net.Backward(ones);

  const double eps = 1e-6;
  for (Parameter* p : net.Params()) {
    for (size_t r = 0; r < p->value.rows(); ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        double saved = p->value.at(r, c);
        p->value.at(r, c) = saved + eps;
        double plus = net.Forward(input, training).Sum();
        p->value.at(r, c) = saved - eps;
        double minus = net.Forward(input, training).Sum();
        p->value.at(r, c) = saved;
        double numeric = (plus - minus) / (2 * eps);
        EXPECT_NEAR(p->grad.at(r, c), numeric, tolerance)
            << p->name << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  util::Rng rng(1);
  Linear layer(2, 2, rng);
  // Overwrite weights with known values.
  auto params = layer.Params();
  params[0]->value = Matrix{{1, 2}, {3, 4}};   // weight (in x out)
  params[1]->value = Matrix{{10, 20}};         // bias
  Matrix x = {{1, 1}};
  Matrix y = layer.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 1 * 1 + 1 * 3 + 10);
  EXPECT_DOUBLE_EQ(y.at(0, 1), 1 * 2 + 1 * 4 + 20);
}

TEST(LinearTest, GradientCheck) {
  util::Rng rng(2);
  Sequential net;
  net.Add(std::make_unique<Linear>(3, 4, rng, InitScheme::kXavierUniform));
  Matrix x = Matrix::RandomGaussian(5, 3, 0.0, 1.0, rng);
  CheckInputGradient(net, x, false);
  CheckParamGradients(net, x, false);
}

TEST(ActivationTest, ReluGradientCheck) {
  util::Rng rng(3);
  Sequential net;
  net.Add(std::make_unique<Linear>(3, 3, rng, InitScheme::kXavierUniform));
  net.Add(std::make_unique<Relu>());
  Matrix x = Matrix::RandomGaussian(4, 3, 0.5, 1.0, rng);
  CheckInputGradient(net, x, false, 1e-5);
}

TEST(ActivationTest, LeakyReluForwardAndGradient) {
  LeakyRelu layer(0.2);
  Matrix x = {{-10.0, 5.0}};
  Matrix y = layer.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.at(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(y.at(0, 1), 5.0);
  Matrix g = layer.Backward(Matrix(1, 2, 1.0));
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 1.0);
}

TEST(ActivationTest, TanhGradientCheck) {
  util::Rng rng(4);
  Sequential net;
  net.Add(std::make_unique<Tanh>());
  Matrix x = Matrix::RandomGaussian(3, 4, 0.0, 1.5, rng);
  CheckInputGradient(net, x, false);
}

TEST(ActivationTest, SigmoidBoundsAndGradient) {
  util::Rng rng(5);
  Sequential net;
  net.Add(std::make_unique<Sigmoid>());
  Matrix x = Matrix::RandomGaussian(3, 4, 0.0, 2.0, rng);
  Matrix y = net.Forward(x, false);
  for (size_t r = 0; r < y.rows(); ++r) {
    for (size_t c = 0; c < y.cols(); ++c) {
      EXPECT_GT(y.at(r, c), 0.0);
      EXPECT_LT(y.at(r, c), 1.0);
    }
  }
  CheckInputGradient(net, x, false);
}

TEST(BatchNormTest, NormalizesBatchInTraining) {
  BatchNorm bn(3);
  util::Rng rng(6);
  Matrix x = Matrix::RandomGaussian(64, 3, 5.0, 2.0, rng);
  Matrix y = bn.Forward(x, true);
  Matrix mean = y.MeanRows();
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(mean.at(0, c), 0.0, 1e-9);
  }
  // Per-feature variance ~1.
  for (size_t c = 0; c < 3; ++c) {
    double var = 0;
    for (size_t r = 0; r < y.rows(); ++r) var += y.at(r, c) * y.at(r, c);
    var /= static_cast<double>(y.rows());
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNormTest, RunningStatsConvergeAndDriveEval) {
  BatchNorm bn(1);
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Matrix x = Matrix::RandomGaussian(32, 1, 4.0, 1.0, rng);
    bn.Forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean().at(0, 0), 4.0, 0.2);
  EXPECT_NEAR(bn.running_var().at(0, 0), 1.0, 0.2);
  // In eval mode an input equal to the running mean maps to ~beta (0).
  Matrix probe(1, 1, 4.0);
  Matrix y = bn.Forward(probe, false);
  EXPECT_NEAR(y.at(0, 0), 0.0, 0.25);
}

TEST(BatchNormTest, TrainingGradientCheck) {
  util::Rng rng(8);
  Sequential net;
  net.Add(std::make_unique<BatchNorm>(3));
  Matrix x = Matrix::RandomGaussian(6, 3, 1.0, 2.0, rng);
  CheckInputGradient(net, x, true, 1e-5);
  CheckParamGradients(net, x, true, 1e-5);
}

TEST(BatchNormTest, EvalGradientCheck) {
  util::Rng rng(9);
  Sequential net;
  net.Add(std::make_unique<BatchNorm>(2));
  // Populate running stats first.
  net.Forward(Matrix::RandomGaussian(32, 2, 0.0, 1.0, rng), true);
  Matrix x = Matrix::RandomGaussian(4, 2, 0.0, 1.0, rng);
  CheckInputGradient(net, x, false);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  util::Rng rng(10);
  Dropout layer(0.5, rng);
  Matrix x = Matrix::RandomGaussian(4, 4, 0.0, 1.0, rng);
  Matrix y = layer.Forward(x, false);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      EXPECT_DOUBLE_EQ(y.at(i, j), x.at(i, j));
    }
  }
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  util::Rng rng(11);
  Dropout layer(0.3, rng);
  Matrix x(2000, 1, 1.0);
  Matrix y = layer.Forward(x, true);
  EXPECT_NEAR(y.MeanRows().at(0, 0), 1.0, 0.07);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  util::Rng rng(12);
  Dropout layer(0.5, rng);
  Matrix x(1, 100, 1.0);
  Matrix y = layer.Forward(x, true);
  Matrix g = layer.Backward(Matrix(1, 100, 1.0));
  for (size_t c = 0; c < 100; ++c) {
    EXPECT_DOUBLE_EQ(g.at(0, c), y.at(0, c));  // Both equal mask value.
  }
}

TEST(ParallelLinearTest, SplitsInputCorrectly) {
  util::Rng rng(13);
  ParallelLinear layer(2, 3, 4, 5, rng);
  Matrix x = Matrix::RandomGaussian(2, 6, 0.0, 1.0, rng);
  Matrix y = layer.Forward(x, false);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 8u);  // 3 + 5.
  EXPECT_EQ(layer.Params().size(), 4u);
}

TEST(ParallelLinearTest, GradientCheck) {
  util::Rng rng(14);
  Sequential net;
  net.Add(std::make_unique<ParallelLinear>(3, 4, 2, 4, rng,
                                           InitScheme::kXavierUniform));
  net.Add(std::make_unique<Tanh>());
  Matrix x = Matrix::RandomGaussian(4, 5, 0.0, 1.0, rng);
  CheckInputGradient(net, x, false);
  CheckParamGradients(net, x, false);
}

TEST(SequentialTest, CompositeGradientCheck) {
  // An actor-shaped stack (minus dropout): the full backward path.
  util::Rng rng(15);
  Sequential net;
  net.Add(std::make_unique<Linear>(4, 8, rng, InitScheme::kXavierUniform));
  net.Add(std::make_unique<LeakyRelu>(0.2));
  net.Add(std::make_unique<BatchNorm>(8));
  net.Add(std::make_unique<Linear>(8, 6, rng, InitScheme::kXavierUniform));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(6, 2, rng, InitScheme::kXavierUniform));
  net.Add(std::make_unique<Sigmoid>());
  Matrix x = Matrix::RandomGaussian(5, 4, 0.0, 1.0, rng);
  CheckInputGradient(net, x, true, 1e-5);
  CheckParamGradients(net, x, true, 1e-5);
}

TEST(SequentialTest, MseLossValueAndGradient) {
  Matrix pred = {{1.0, 2.0}};
  Matrix target = {{0.0, 4.0}};
  Matrix grad;
  double loss = MseLoss(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 1), 2.0 * -2.0 / 2.0);
}

TEST(SequentialTest, CopyAndSoftUpdate) {
  util::Rng rng(16);
  auto build = [&rng]() {
    Sequential net;
    net.Add(std::make_unique<Linear>(2, 2, rng));
    return net;
  };
  Sequential a = build();
  Sequential b = build();
  b.CopyParamsFrom(a);
  EXPECT_DOUBLE_EQ(b.Params()[0]->value.at(0, 0), a.Params()[0]->value.at(0, 0));

  // Soft update: b' = tau*a + (1-tau)*b; with identical nets it's a no-op.
  double before = b.Params()[0]->value.at(0, 0);
  b.SoftUpdateFrom(a, 0.1);
  EXPECT_DOUBLE_EQ(b.Params()[0]->value.at(0, 0), before);
  // Perturb a; b moves 10% toward it.
  a.Params()[0]->value.at(0, 0) = before + 1.0;
  b.SoftUpdateFrom(a, 0.1);
  EXPECT_NEAR(b.Params()[0]->value.at(0, 0), before + 0.1, 1e-12);
}

TEST(SequentialTest, SaveLoadRoundTrip) {
  util::Rng rng(17);
  auto build = [&rng]() {
    Sequential net;
    net.Add(std::make_unique<Linear>(3, 4, rng));
    net.Add(std::make_unique<BatchNorm>(4));
    net.Add(std::make_unique<Linear>(4, 1, rng));
    return net;
  };
  Sequential original = build();
  // Push some data through so BatchNorm running stats are non-trivial.
  original.Forward(Matrix::RandomGaussian(16, 3, 2.0, 1.0, rng), true);

  std::stringstream buffer;
  original.Save(buffer);
  Sequential restored = build();
  restored.Load(buffer);

  Matrix probe = Matrix::RandomGaussian(4, 3, 0.0, 1.0, rng);
  Matrix y1 = original.Forward(probe, false);
  Matrix y2 = restored.Forward(probe, false);
  for (size_t r = 0; r < y1.rows(); ++r) {
    EXPECT_NEAR(y1.at(r, 0), y2.at(r, 0), 1e-12);
  }
}

TEST(SequentialTest, NumParametersCountsEverything) {
  util::Rng rng(18);
  Sequential net;
  net.Add(std::make_unique<Linear>(10, 5, rng));  // 50 + 5
  net.Add(std::make_unique<BatchNorm>(5));        // 5 + 5
  EXPECT_EQ(net.NumParameters(), 65u);
}

TEST(SequentialTest, LoadRejectsWrongArchitecture) {
  util::Rng rng(30);
  Sequential a;
  a.Add(std::make_unique<Linear>(2, 3, rng));
  std::stringstream buffer;
  a.Save(buffer);
  Sequential b;
  b.Add(std::make_unique<Linear>(2, 3, rng));
  b.Add(std::make_unique<Tanh>());
  EXPECT_DEATH(b.Load(buffer), "layers");
}

TEST(SequentialTest, SaveToMissingDirectoryFails) {
  util::Rng rng(31);
  Sequential net;
  net.Add(std::make_unique<Linear>(1, 1, rng));
  EXPECT_FALSE(net.SaveToFile("/nonexistent/dir/model").ok());
  EXPECT_FALSE(net.LoadFromFile("/nonexistent/dir/model").ok());
}

TEST(SequentialTest, CopyStateIncludesBatchNormBuffers) {
  util::Rng rng(32);
  auto build = [&rng]() {
    Sequential net;
    net.Add(std::make_unique<BatchNorm>(2));
    return net;
  };
  Sequential a = build();
  a.Forward(Matrix::RandomGaussian(64, 2, 3.0, 1.0, rng), true);
  Sequential b = build();
  b.CopyStateFrom(a);
  Matrix probe(1, 2, 3.0);
  Matrix ya = a.Forward(probe, false);
  Matrix yb = b.Forward(probe, false);
  EXPECT_DOUBLE_EQ(ya.at(0, 0), yb.at(0, 0));
  // Params-only copy would have missed the running statistics.
  Sequential c = build();
  c.CopyParamsFrom(a);
  Matrix yc = c.Forward(probe, false);
  EXPECT_NE(ya.at(0, 0), yc.at(0, 0));
}

TEST(OptimizerTest, SgdStepMath) {
  util::Rng rng(19);
  Sequential net;
  net.Add(std::make_unique<Linear>(1, 1, rng));
  auto params = net.Params();
  params[0]->value.at(0, 0) = 1.0;
  params[0]->grad.at(0, 0) = 2.0;
  params[1]->value.at(0, 0) = 0.0;
  params[1]->grad.at(0, 0) = 0.0;
  Sgd sgd(params, 0.1, 0.9);
  sgd.Step();
  EXPECT_NEAR(params[0]->value.at(0, 0), 1.0 - 0.1 * 2.0, 1e-12);
  sgd.Step();  // Momentum: v = 0.9*(-0.2) - 0.1*2 = -0.38.
  EXPECT_NEAR(params[0]->value.at(0, 0), 0.8 - 0.38, 1e-12);
}

TEST(OptimizerTest, AdamFirstStepIsLrSizedSignedStep) {
  util::Rng rng(20);
  Sequential net;
  net.Add(std::make_unique<Linear>(1, 1, rng));
  auto params = net.Params();
  params[0]->value.at(0, 0) = 1.0;
  params[0]->grad.at(0, 0) = 123.0;  // Magnitude irrelevant on step one.
  Adam adam(params, 0.01);
  adam.Step();
  EXPECT_NEAR(params[0]->value.at(0, 0), 1.0 - 0.01, 1e-6);
}

TEST(OptimizerTest, GradClipScalesGlobalNorm) {
  util::Rng rng(21);
  Sequential net;
  net.Add(std::make_unique<Linear>(1, 2, rng));
  auto params = net.Params();
  params[0]->grad.at(0, 0) = 3.0;
  params[0]->grad.at(0, 1) = 4.0;  // Norm 5 across this parameter.
  params[1]->grad = Matrix(1, 2, 0.0);
  Sgd sgd(params, 0.1);
  sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(params[0]->grad.at(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(params[0]->grad.at(0, 1), 0.8, 1e-12);
}

TEST(TrainingTest, LearnsLinearRegression) {
  util::Rng rng(22);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 1, rng, InitScheme::kXavierUniform));
  Adam opt(net.Params(), 0.05);
  // Target function y = 3a - 2b + 1.
  Matrix x(64, 2);
  Matrix y(64, 1);
  for (size_t i = 0; i < 64; ++i) {
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    x.SetRow(i, {a, b});
    y.at(i, 0) = 3 * a - 2 * b + 1;
  }
  double loss = 0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    net.ZeroGrad();
    Matrix pred = net.Forward(x, true);
    Matrix grad;
    loss = MseLoss(pred, y, &grad);
    net.Backward(grad);
    opt.Step();
  }
  EXPECT_LT(loss, 1e-4);
}

TEST(TrainingTest, LearnsXorWithHiddenLayer) {
  util::Rng rng(23);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 8, rng, InitScheme::kXavierUniform));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(8, 1, rng, InitScheme::kXavierUniform));
  net.Add(std::make_unique<Sigmoid>());
  Adam opt(net.Params(), 0.05);
  Matrix x = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Matrix y = {{0}, {1}, {1}, {0}};
  for (int epoch = 0; epoch < 2000; ++epoch) {
    net.ZeroGrad();
    Matrix pred = net.Forward(x, true);
    Matrix grad;
    MseLoss(pred, y, &grad);
    net.Backward(grad);
    opt.Step();
  }
  Matrix pred = net.Forward(x, false);
  EXPECT_LT(pred.at(0, 0), 0.2);
  EXPECT_GT(pred.at(1, 0), 0.8);
  EXPECT_GT(pred.at(2, 0), 0.8);
  EXPECT_LT(pred.at(3, 0), 0.2);
}

}  // namespace
}  // namespace cdbtune::nn
