#include <cmath>

#include "gtest/gtest.h"
#include "env/instance.h"
#include "env/metrics.h"
#include "env/perf_model.h"
#include "env/simulated_cdb.h"
#include "workload/workload.h"

namespace cdbtune::env {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

void SetKnob(const knobs::KnobRegistry& reg, knobs::Config& config,
             const char* name, double value) {
  auto idx = reg.FindIndex(name);
  ASSERT_TRUE(idx.has_value()) << name;
  config[*idx] = value;
}

// --- Metrics schema -----------------------------------------------------------

TEST(MetricsTest, SchemaHas63MetricsSplit14And49) {
  EXPECT_EQ(kNumInternalMetrics, 63u);
  EXPECT_EQ(kNumStateMetrics, 14u);
  EXPECT_EQ(kNumCumulativeMetrics, 49u);
  size_t state = 0, cumulative = 0;
  for (size_t i = 0; i < kNumInternalMetrics; ++i) {
    if (InternalMetricKind(i) == MetricKind::kState) {
      ++state;
    } else {
      ++cumulative;
    }
  }
  EXPECT_EQ(state, 14u);
  EXPECT_EQ(cumulative, 49u);
}

TEST(MetricsTest, NamesAreUniqueAndNonEmpty) {
  auto names = AllInternalMetricNames();
  ASSERT_EQ(names.size(), kNumInternalMetrics);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

// --- Instances ---------------------------------------------------------------

TEST(InstanceTest, Table1Presets) {
  EXPECT_DOUBLE_EQ(CdbA().ram_gb, 8);
  EXPECT_DOUBLE_EQ(CdbA().disk_gb, 100);
  EXPECT_DOUBLE_EQ(CdbB().ram_gb, 12);
  EXPECT_DOUBLE_EQ(CdbC().disk_gb, 200);
  EXPECT_DOUBLE_EQ(CdbD().ram_gb, 16);
  EXPECT_DOUBLE_EQ(CdbE().ram_gb, 32);
  EXPECT_DOUBLE_EQ(CdbE().disk_gb, 300);

  auto x1 = CdbX1Variants();
  ASSERT_EQ(x1.size(), 5u);
  EXPECT_DOUBLE_EQ(x1[0].ram_gb, 4);
  EXPECT_DOUBLE_EQ(x1[4].ram_gb, 128);
  for (const auto& hw : x1) EXPECT_DOUBLE_EQ(hw.disk_gb, 100);

  auto x2 = CdbX2Variants();
  ASSERT_EQ(x2.size(), 5u);
  EXPECT_DOUBLE_EQ(x2[0].disk_gb, 32);
  EXPECT_DOUBLE_EQ(x2[4].disk_gb, 512);
  for (const auto& hw : x2) EXPECT_DOUBLE_EQ(hw.ram_gb, 12);
}

// --- Performance model properties --------------------------------------------

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest()
      : db_(SimulatedCdb::MysqlCdb(CdbA())), reg_(db_->registry()) {}

  double Tps(const knobs::Config& config,
             const workload::WorkloadSpec& spec) const {
    return db_->EvaluateNoiseless(config, spec).throughput_tps;
  }

  std::unique_ptr<SimulatedCdb> db_;
  const knobs::KnobRegistry& reg_;
};

TEST_F(PerfModelTest, BufferPoolHelpsThenSwapsNearRamLimit) {
  auto rw = workload::SysbenchReadWrite();
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "innodb_io_capacity", 10000);
  std::vector<double> tps;
  for (double gb : {0.25, 1.0, 3.0, 6.0, 7.6}) {
    SetKnob(reg_, c, "innodb_buffer_pool_size", gb * kGiB);
    tps.push_back(Tps(c, rw));
  }
  EXPECT_LT(tps[0], tps[1]);
  EXPECT_LT(tps[1], tps[2]);
  EXPECT_LT(tps[2], tps[3]);
  // Non-monotonic: near the RAM limit swapping bites (Figure 1d shape).
  EXPECT_GT(tps[3], tps[4]);
}

TEST_F(PerfModelTest, DurabilityPolicyOrdering) {
  auto wo = workload::SysbenchWriteOnly();
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "innodb_io_capacity", 10000);
  SetKnob(reg_, c, "innodb_flush_log_at_trx_commit", 1);
  double strict = Tps(c, wo);
  SetKnob(reg_, c, "innodb_flush_log_at_trx_commit", 2);
  double relaxed = Tps(c, wo);
  SetKnob(reg_, c, "innodb_flush_log_at_trx_commit", 0);
  double lazy = Tps(c, wo);
  EXPECT_LT(strict, relaxed);
  EXPECT_LE(relaxed, lazy * 1.001);
}

TEST_F(PerfModelTest, SmallRedoLogCausesCheckpointStalls) {
  auto wo = workload::SysbenchWriteOnly();
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "innodb_io_capacity", 10000);
  SetKnob(reg_, c, "innodb_log_file_size", 8.0 * 1024 * 1024);
  SetKnob(reg_, c, "innodb_log_files_in_group", 2);
  double small_log = Tps(c, wo);
  SetKnob(reg_, c, "innodb_log_file_size", 2.0 * kGiB);
  SetKnob(reg_, c, "innodb_log_files_in_group", 4);
  double big_log = Tps(c, wo);
  EXPECT_GT(big_log, small_log * 1.2);
}

TEST_F(PerfModelTest, IoThreadsHaveInteriorOptimum) {
  auto ro = workload::SysbenchReadOnly();
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "innodb_buffer_pool_size", 2.0 * kGiB);
  SetKnob(reg_, c, "innodb_read_io_threads", 1);
  double few = Tps(c, ro);
  SetKnob(reg_, c, "innodb_read_io_threads", 16);
  double mid = Tps(c, ro);
  SetKnob(reg_, c, "innodb_read_io_threads", 64);
  double many = Tps(c, ro);
  EXPECT_GT(mid, few);
  EXPECT_GT(mid, many);  // Thrashing beyond ~1.5x cores.
}

TEST_F(PerfModelTest, SortBufferMattersForOlapOnly) {
  knobs::Config c = reg_.DefaultConfig();
  double tpch_small = Tps(c, workload::Tpch());
  double wo_small = Tps(c, workload::SysbenchWriteOnly());
  SetKnob(reg_, c, "sort_buffer_size", 64.0 * 1024 * 1024);
  double tpch_big = Tps(c, workload::Tpch());
  double wo_big = Tps(c, workload::SysbenchWriteOnly());
  EXPECT_GT(tpch_big, tpch_small * 1.1);
  EXPECT_NEAR(wo_big, wo_small, wo_small * 0.02);
}

TEST_F(PerfModelTest, AdmissionThrottlingTradesThroughputForTail) {
  // The C_T/C_L trade-off lever (Appendix C.1.2): limiting
  // innodb_thread_concurrency tightens the p99 tail at little or some
  // throughput cost.
  auto rw = workload::SysbenchReadWrite();
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "innodb_buffer_pool_size", 5.0 * kGiB);
  SetKnob(reg_, c, "innodb_io_capacity", 8000);
  SetKnob(reg_, c, "max_connections", 4000);
  SetKnob(reg_, c, "innodb_thread_concurrency", 0);
  auto open = db_->EvaluateNoiseless(c, rw);
  SetKnob(reg_, c, "innodb_thread_concurrency", 50);
  auto throttled = db_->EvaluateNoiseless(c, rw);
  EXPECT_LT(throttled.latency_p99_ms, open.latency_p99_ms);
  EXPECT_LE(throttled.throughput_tps, open.throughput_tps * 1.001);
}

TEST_F(PerfModelTest, MaxConnectionsBelowOfferedLoadHurts) {
  auto rw = workload::SysbenchReadWrite();  // 1500 client threads.
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "max_connections", 50);
  double starved = Tps(c, rw);
  SetKnob(reg_, c, "max_connections", 4000);
  double open = Tps(c, rw);
  EXPECT_GT(open, starved);
}

TEST_F(PerfModelTest, HigherSkewImprovesHitRateAtEqualPool) {
  knobs::Config c = reg_.DefaultConfig();
  SetKnob(reg_, c, "innodb_buffer_pool_size", 1.0 * kGiB);
  auto uniform = workload::SysbenchReadOnly();
  auto skewed = uniform;
  skewed.access_skew = 0.9;
  auto u = db_->EvaluateNoiseless(c, uniform);
  auto s = db_->EvaluateNoiseless(c, skewed);
  EXPECT_GT(s.buffer_hit_rate, u.buffer_hit_rate);
}

TEST_F(PerfModelTest, LatencyInverseToThroughput) {
  auto rw = workload::SysbenchReadWrite();
  knobs::Config slow = reg_.DefaultConfig();
  knobs::Config fast = slow;
  SetKnob(reg_, fast, "innodb_buffer_pool_size", 6.0 * kGiB);
  SetKnob(reg_, fast, "innodb_io_capacity", 10000);
  auto ps = db_->EvaluateNoiseless(slow, rw);
  auto pf = db_->EvaluateNoiseless(fast, rw);
  EXPECT_GT(pf.throughput_tps, ps.throughput_tps);
  EXPECT_LT(pf.latency_p99_ms, ps.latency_p99_ms);
  EXPECT_GT(ps.latency_p99_ms, ps.latency_mean_ms);
}

TEST_F(PerfModelTest, BetterHardwareGivesBetterDefaults) {
  auto rw = workload::SysbenchReadWrite();
  auto small = SimulatedCdb::MysqlCdb(CdbA());
  auto large = SimulatedCdb::MysqlCdb(MakeInstance("big", 64, 500));
  knobs::Config tuned = small->registry().DefaultConfig();
  SetKnob(small->registry(), tuned, "innodb_buffer_pool_size", 6.0 * kGiB);
  // The same tuned config cannot be worse on strictly better hardware.
  EXPECT_GE(large->EvaluateNoiseless(tuned, rw).throughput_tps,
            small->EvaluateNoiseless(tuned, rw).throughput_tps * 0.99);
}

TEST_F(PerfModelTest, DeviceClassesOrdering) {
  auto rw = workload::SysbenchReadWrite();
  knobs::Config c = reg_.DefaultConfig();
  auto hdd = SimulatedCdb::MysqlCdb(MakeInstance("hdd", 8, 100, DiskType::kHdd));
  auto ssd = SimulatedCdb::MysqlCdb(MakeInstance("ssd", 8, 100, DiskType::kSsd));
  auto nvm = SimulatedCdb::MysqlCdb(MakeInstance("nvm", 8, 100, DiskType::kNvm));
  double t_hdd = hdd->EvaluateNoiseless(c, rw).throughput_tps;
  double t_ssd = ssd->EvaluateNoiseless(c, rw).throughput_tps;
  double t_nvm = nvm->EvaluateNoiseless(c, rw).throughput_tps;
  EXPECT_LT(t_hdd, t_ssd);
  EXPECT_LE(t_ssd, t_nvm);
}

// --- Minor knob surface ---------------------------------------------------------

TEST(MinorSurfaceTest, DeterministicAndBounded) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  EngineProfile profile = MysqlCdbProfile();
  MinorKnobSurface surface(reg, profile.core_knob_names, 0.18);
  MinorKnobSurface surface2(reg, profile.core_knob_names, 0.18);
  knobs::Config defaults = reg.DefaultConfig();
  EXPECT_DOUBLE_EQ(surface.Evaluate(defaults), surface2.Evaluate(defaults));
  EXPECT_GT(surface.num_minor_knobs(), 200u);

  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    knobs::Config random = defaults;
    for (size_t k = 0; k < reg.size(); ++k) {
      random[k] = knobs::DenormalizeKnobValue(reg.def(k), rng.Uniform());
    }
    double f = surface.Evaluate(random);
    EXPECT_GT(f, 1.0 - 0.18 * 1.5);
    EXPECT_LT(f, 1.0 + 0.18 * 1.1);
  }
}

TEST(MinorSurfaceTest, DefaultsScoreAboveRandomOnAverage) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  EngineProfile profile = MysqlCdbProfile();
  MinorKnobSurface surface(reg, profile.core_knob_names, 0.18);
  double default_score = surface.Evaluate(reg.DefaultConfig());
  util::Rng rng(6);
  double random_sum = 0.0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    knobs::Config random = reg.DefaultConfig();
    for (size_t k = 0; k < reg.size(); ++k) {
      random[k] = knobs::DenormalizeKnobValue(reg.def(k), rng.Uniform());
    }
    random_sum += surface.Evaluate(random);
  }
  EXPECT_GT(default_score, random_sum / trials);
}

// --- SimulatedCdb behaviour ------------------------------------------------------

TEST(SimulatedCdbTest, CrashOnOversizedRedoLog) {
  auto db = SimulatedCdb::MysqlCdb(CdbA());
  knobs::Config c = db->registry().DefaultConfig();
  SetKnob(db->registry(), c, "innodb_log_file_size", 16.0 * kGiB);
  SetKnob(db->registry(), c, "innodb_log_files_in_group", 8);
  util::Status s = db->ApplyConfig(c);
  EXPECT_EQ(s.code(), util::StatusCode::kCrashed);
  EXPECT_EQ(db->crash_count(), 1);
  // The previous (default) configuration survives the restart.
  EXPECT_DOUBLE_EQ(
      db->current_config()[*db->registry().FindIndex("innodb_log_file_size")],
      db->registry().def(*db->registry().FindIndex("innodb_log_file_size"))
          .default_value);
}

TEST(SimulatedCdbTest, CrashOnMemoryOvercommit) {
  auto db = SimulatedCdb::MysqlCdb(CdbA());  // 8 GB RAM.
  knobs::Config c = db->registry().DefaultConfig();
  SetKnob(db->registry(), c, "innodb_buffer_pool_size", 16.0 * kGiB);
  EXPECT_EQ(db->ApplyConfig(c).code(), util::StatusCode::kCrashed);
}

TEST(SimulatedCdbTest, CountersAreCumulativeAcrossRuns) {
  auto db = SimulatedCdb::MysqlCdb(CdbA());
  auto rw = workload::SysbenchReadWrite();
  auto r1 = db->RunStress(rw, 150.0);
  ASSERT_TRUE(r1.ok());
  auto r2 = db->RunStress(rw, 150.0);
  ASSERT_TRUE(r2.ok());
  // The second run starts where the first ended.
  for (size_t i = kNumStateMetrics; i < kNumInternalMetrics; ++i) {
    EXPECT_GE(r2.value().before[i], r1.value().before[i]);
    EXPECT_GE(r2.value().after[i], r2.value().before[i]) << "metric " << i;
  }
}

TEST(SimulatedCdbTest, NoiseIsSmallAndSeedDependent) {
  auto rw = workload::SysbenchReadWrite();
  auto db1 = SimulatedCdb::MysqlCdb(CdbA(), 1);
  auto db2 = SimulatedCdb::MysqlCdb(CdbA(), 2);
  double t1 = db1->RunStress(rw, 150.0).value().external.throughput_tps;
  double t2 = db2->RunStress(rw, 150.0).value().external.throughput_tps;
  double noiseless = db1->EvaluateNoiseless(db1->registry().DefaultConfig(), rw)
                         .throughput_tps;
  EXPECT_NE(t1, t2);
  EXPECT_NEAR(t1, noiseless, noiseless * 0.05);
  EXPECT_NEAR(t2, noiseless, noiseless * 0.05);
}

TEST(SimulatedCdbTest, ResetRestoresDefaultsAndClearsCounters) {
  auto db = SimulatedCdb::MysqlCdb(CdbA());
  knobs::Config c = db->registry().DefaultConfig();
  SetKnob(db->registry(), c, "innodb_buffer_pool_size", 1.0 * kGiB);
  ASSERT_TRUE(db->ApplyConfig(c).ok());
  db->RunStress(workload::SysbenchReadWrite(), 150.0).value();
  db->Reset();
  EXPECT_EQ(db->current_config(),
            db->registry().DefaultConfig());
  auto r = db->RunStress(workload::SysbenchReadWrite(), 150.0);
  // Counters restarted from zero.
  EXPECT_DOUBLE_EQ(r.value().before[kNumStateMetrics], 0.0);
}

TEST(SimulatedCdbTest, RejectsWrongConfigSize) {
  auto db = SimulatedCdb::MysqlCdb(CdbA());
  knobs::Config wrong(10, 0.0);
  EXPECT_EQ(db->ApplyConfig(wrong).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(db->RunStress(workload::Tpcc(), -5.0).ok());
}

TEST(SimulatedCdbTest, OtherEngineProfilesWork) {
  auto pg = SimulatedCdb::Postgres(CdbD());
  auto mongo = SimulatedCdb::Mongo(CdbE());
  auto local = SimulatedCdb::LocalMysql(CdbC());
  EXPECT_EQ(pg->registry().TunableIndices().size(),
            knobs::kPostgresTunableKnobs);
  EXPECT_EQ(mongo->registry().TunableIndices().size(),
            knobs::kMongoTunableKnobs);
  EXPECT_GT(pg->RunStress(workload::Tpcc(), 150.0)
                .value()
                .external.throughput_tps,
            0.0);
  EXPECT_GT(mongo->RunStress(workload::Ycsb(), 150.0)
                .value()
                .external.throughput_tps,
            0.0);
  // Local MySQL is faster than cloud CDB under identical config/hardware
  // (no proxy hop).
  auto cdb = SimulatedCdb::MysqlCdb(CdbC());
  auto w = workload::Tpcc();
  EXPECT_GT(local->EvaluateNoiseless(local->registry().DefaultConfig(), w)
                .throughput_tps,
            cdb->EvaluateNoiseless(cdb->registry().DefaultConfig(), w)
                .throughput_tps);
}

TEST(SimulatedCdbTest, PostgresSharedBuffersMatter) {
  auto pg = SimulatedCdb::Postgres(CdbD());
  knobs::Config c = pg->registry().DefaultConfig();
  auto w = workload::Tpcc();
  double small = pg->EvaluateNoiseless(c, w).throughput_tps;
  SetKnob(pg->registry(), c, "shared_buffers", 4.0 * kGiB);
  double big = pg->EvaluateNoiseless(c, w).throughput_tps;
  EXPECT_GT(big, small);
}

TEST(SimulatedCdbTest, MongoCacheMatters) {
  auto mongo = SimulatedCdb::Mongo(CdbE());
  knobs::Config c = mongo->registry().DefaultConfig();
  auto w = workload::Ycsb();
  double small = mongo->EvaluateNoiseless(c, w).throughput_tps;
  SetKnob(mongo->registry(), c, "wiredtiger_cache_size", 8.0 * kGiB);
  double big = mongo->EvaluateNoiseless(c, w).throughput_tps;
  EXPECT_GT(big, small);
}

}  // namespace
}  // namespace cdbtune::env
