// Reproduces Figure 17 (Appendix C.3): TPC-C on a Postgres-flavored engine
// with 169 tunable knobs, instance CDB-D, comparing CDBTune against the
// Postgres defaults, the CDB template, BestConfig, the DBA and OtterTune.
//
// Expected shape (paper): CDBTune wins on both metrics.
#include "bench_common.h"

int main() {
  using namespace cdbtune;
  auto spec = workload::Tpcc();
  bench::Budgets budgets;
  budgets.cdbtune_offline_steps = 600;
  budgets.seed = 107;

  std::vector<bench::ContenderResult> rows = bench::RunStandardContenders(
      [] { return env::SimulatedCdb::Postgres(env::CdbD(), 107); }, spec,
      budgets);
  bench::PrintContenders(
      "Figure 17: TPC-C on Postgres-flavored engine (169 knobs, CDB-D)", rows);
  return 0;
}
