#include "baselines/lasso.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace cdbtune::baselines {

Lasso::Lasso() : Lasso(Options()) {}

Lasso::Lasso(Options options) : options_(options) {}

void Lasso::Fit(const std::vector<std::vector<double>>& inputs,
                const std::vector<double>& targets) {
  CDBTUNE_CHECK(!inputs.empty() && inputs.size() == targets.size())
      << "empty or mismatched Lasso data";
  const size_t n = inputs.size();
  const size_t d = inputs[0].size();

  // Standardize features; center targets.
  feature_mean_.assign(d, 0.0);
  feature_scale_.assign(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    double m = 0.0;
    for (size_t i = 0; i < n; ++i) m += inputs[i][j];
    m /= static_cast<double>(n);
    double v = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double diff = inputs[i][j] - m;
      v += diff * diff;
    }
    v /= static_cast<double>(n);
    feature_mean_[j] = m;
    feature_scale_[j] = v > 1e-12 ? std::sqrt(v) : 1.0;
  }
  double y_mean =
      std::accumulate(targets.begin(), targets.end(), 0.0) / static_cast<double>(n);

  std::vector<std::vector<double>> x(n, std::vector<double>(d));
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      x[i][j] = (inputs[i][j] - feature_mean_[j]) / feature_scale_[j];
    }
    y[i] = targets[i] - y_mean;
  }

  weights_.assign(d, 0.0);
  std::vector<double> residual = y;  // y - X w, with w = 0.
  // Column squared norms for coordinate updates.
  std::vector<double> col_sq(d, 0.0);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) col_sq[j] += x[i][j] * x[i][j];
  }
  const double lambda_n = options_.lambda * static_cast<double>(n);

  for (int it = 0; it < options_.max_iterations; ++it) {
    double max_delta = 0.0;
    for (size_t j = 0; j < d; ++j) {
      if (col_sq[j] < 1e-12) continue;
      // rho = x_j . (residual + w_j x_j)
      double rho = 0.0;
      for (size_t i = 0; i < n; ++i) rho += x[i][j] * residual[i];
      rho += weights_[j] * col_sq[j];
      // Soft threshold.
      double w_new;
      if (rho > lambda_n) {
        w_new = (rho - lambda_n) / col_sq[j];
      } else if (rho < -lambda_n) {
        w_new = (rho + lambda_n) / col_sq[j];
      } else {
        w_new = 0.0;
      }
      double delta = w_new - weights_[j];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) residual[i] -= delta * x[i][j];
        weights_[j] = w_new;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < options_.tolerance) break;
  }
  // Fold standardization into the intercept for Predict on raw inputs.
  intercept_ = y_mean;
  for (size_t j = 0; j < d; ++j) {
    intercept_ -= weights_[j] * feature_mean_[j] / feature_scale_[j];
  }
}

double Lasso::Predict(const std::vector<double>& x) const {
  CDBTUNE_CHECK(x.size() == weights_.size()) << "feature count mismatch";
  double y = intercept_;
  for (size_t j = 0; j < x.size(); ++j) {
    y += weights_[j] / feature_scale_[j] * x[j];
  }
  return y;
}

std::vector<size_t> Lasso::RankFeatures() const {
  std::vector<size_t> order(weights_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return std::fabs(weights_[a]) > std::fabs(weights_[b]);
  });
  return order;
}

}  // namespace cdbtune::baselines
