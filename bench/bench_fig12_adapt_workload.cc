// Reproduces Figure 12: adaptability to workload change on CDB-C. A model
// trained on the Sysbench read-write workload tunes TPC-C (cross testing,
// M_RW->TPC-C) and is compared with a model trained on TPC-C itself
// (normal testing, M_TPC-C->TPC-C), alongside the baselines tuning TPC-C
// directly.
//
// Expected shape (paper): the cross-tested model performs only slightly
// below the normal one and above every baseline — the pre-trained standard
// model adapts to a related workload through 5-step online fine-tuning.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cdbtune;
  auto target = workload::Tpcc();
  bench::Budgets budgets;
  budgets.cdbtune_offline_steps = 850;
  budgets.seed = 89;

  // Cross: train on Sysbench RW, tune TPC-C.
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbC(), budgets.seed);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  std::unique_ptr<tuner::CdbTuner> model;
  bench::RunCdbTune(*db, space, workload::SysbenchReadWrite(), budgets, &model);
  db->Reset();
  auto cross = model->OnlineTune(target);

  // Normal: train on TPC-C, tune TPC-C.
  auto normal_db = env::SimulatedCdb::MysqlCdb(env::CdbC(), budgets.seed + 1);
  bench::Budgets nb = budgets;
  bench::ContenderResult normal = bench::RunCdbTune(*normal_db, space, target, nb);

  auto base_db = env::SimulatedCdb::MysqlCdb(env::CdbC(), budgets.seed + 2);
  std::vector<bench::ContenderResult> rows;
  rows.push_back(bench::RunDefault(*base_db, target));
  rows.push_back(bench::RunCdbDefault(*base_db, target));
  rows.push_back(bench::RunBestConfig(*base_db, space, target, budgets));
  rows.push_back(bench::RunDba(*base_db, target));
  rows.push_back(bench::RunOtterTune(*base_db, space, target, budgets));
  bench::ContenderResult cross_row;
  cross_row.name = "M_RW->TPC-C (cross)";
  cross_row.throughput = cross.best.throughput;
  cross_row.latency_p99 = cross.best.latency;
  cross_row.steps = cross.steps;
  rows.push_back(cross_row);
  normal.name = "M_TPC-C->TPC-C (normal)";
  rows.push_back(normal);

  bench::PrintContenders(
      "Figure 12: model trained on Sysbench RW applied to TPC-C (CDB-C)",
      rows);
  return 0;
}
