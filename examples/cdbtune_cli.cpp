// Command-line driver exposing the train-once / tune-many deployment flow
// with persisted models:
//
//   $ ./cdbtune_cli train  --workload rw --instance a --model /tmp/std_model
//   $ ./cdbtune_cli tune   --workload tpcc --instance c --model /tmp/std_model
//   $ ./cdbtune_cli inspect --instance a
//
// `train` builds the standard model offline and writes it to disk; `tune`
// loads it and serves one 5-step online tuning request (printing the SET
// GLOBAL commands); `inspect` lists the knob catalog and instance shape.
#include <cstdio>
#include <cstring>
#include <string>

#include "env/simulated_cdb.h"
#include "tuner/cdbtune.h"

namespace {

using namespace cdbtune;

workload::WorkloadSpec ParseWorkload(const std::string& name) {
  if (name == "ro") return workload::SysbenchReadOnly();
  if (name == "wo") return workload::SysbenchWriteOnly();
  if (name == "rw") return workload::SysbenchReadWrite();
  if (name == "tpcc") return workload::Tpcc();
  if (name == "tpch") return workload::Tpch();
  if (name == "ycsb") return workload::Ycsb();
  std::fprintf(stderr, "unknown workload '%s' (ro|wo|rw|tpcc|tpch|ycsb)\n",
               name.c_str());
  std::exit(2);
}

env::HardwareSpec ParseInstance(const std::string& name) {
  if (name == "a") return env::CdbA();
  if (name == "b") return env::CdbB();
  if (name == "c") return env::CdbC();
  if (name == "d") return env::CdbD();
  if (name == "e") return env::CdbE();
  std::fprintf(stderr, "unknown instance '%s' (a|b|c|d|e)\n", name.c_str());
  std::exit(2);
}

struct Args {
  std::string command;
  std::string workload = "rw";
  std::string instance = "a";
  std::string model = "/tmp/cdbtune_model";
  int steps = 600;
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: cdbtune_cli <train|tune|inspect> [--workload W] "
                 "[--instance I] [--model PATH] [--steps N]\n");
    std::exit(2);
  }
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--workload") {
      args.workload = value;
    } else if (flag == "--instance") {
      args.instance = value;
    } else if (flag == "--model") {
      args.model = value;
    } else if (flag == "--steps") {
      args.steps = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return args;
}

int Inspect(const Args& args) {
  auto db = env::SimulatedCdb::MysqlCdb(ParseInstance(args.instance));
  const auto& reg = db->registry();
  std::printf("instance %s: %.0f GB RAM, %.0f GB %s disk, %d cores\n",
              db->hardware().name.c_str(), db->hardware().ram_gb,
              db->hardware().disk_gb, env::DiskTypeName(db->hardware().disk_type),
              db->hardware().cpu_cores);
  std::printf("catalog: %zu knobs (%zu tunable)\n", reg.size(),
              reg.TunableIndices().size());
  std::printf("%-36s %-8s %16s %16s %16s\n", "name", "type", "min", "default",
              "max");
  for (size_t i = 0; i < reg.size() && i < 30; ++i) {
    const auto& def = reg.def(i);
    const char* type = def.type == knobs::KnobType::kInteger   ? "int"
                       : def.type == knobs::KnobType::kDouble  ? "double"
                       : def.type == knobs::KnobType::kBoolean ? "bool"
                                                               : "enum";
    std::printf("%-36s %-8s %16.0f %16.0f %16.0f\n", def.name.c_str(), type,
                def.min_value, def.default_value, def.max_value);
  }
  std::printf("... (%zu more)\n", reg.size() - 30);
  return 0;
}

int Train(const Args& args) {
  auto db = env::SimulatedCdb::MysqlCdb(ParseInstance(args.instance));
  auto spec = ParseWorkload(args.workload);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  tuner::CdbTuneOptions options;
  options.max_offline_steps = args.steps;
  tuner::CdbTuner tuner(db.get(), space, options);
  std::printf("training on %s / %s for %d steps ...\n", spec.name.c_str(),
              db->hardware().name.c_str(), args.steps);
  auto result = tuner.OfflineTrain(spec);
  std::printf("done: best %.0f txn/s (defaults %.0f), %d crashes punished\n",
              result.best.throughput, result.initial.throughput,
              result.crashes);
  util::Status saved = tuner.SaveModel(args.model);
  if (!saved.ok()) {
    std::fprintf(stderr, "saving model failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("standard model written to %s.{agent,meta}\n",
              args.model.c_str());
  return 0;
}

int Tune(const Args& args) {
  auto db = env::SimulatedCdb::MysqlCdb(ParseInstance(args.instance));
  auto spec = ParseWorkload(args.workload);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  tuner::CdbTuner tuner(db.get(), space, {});
  util::Status loaded = tuner.LoadModel(args.model);
  if (!loaded.ok()) {
    std::fprintf(stderr, "loading model failed: %s (run 'train' first)\n",
                 loaded.ToString().c_str());
    return 1;
  }
  std::printf("tuning %s on %s with model %s ...\n", spec.name.c_str(),
              db->hardware().name.c_str(), args.model.c_str());
  auto result = tuner.OnlineTune(spec);
  std::printf("%.0f -> %.0f txn/s (%.2fx), p99 %.0f -> %.0f ms in %d steps\n",
              result.initial.throughput, result.best.throughput,
              result.best.throughput / result.initial.throughput,
              result.initial.latency, result.best.latency, result.steps);
  tuner::Recommender recommender(&tuner.space());
  auto commands = recommender.RenderCommands(result.best_config,
                                             db->registry().DefaultConfig());
  std::printf("recommendation (%zu knobs changed); first 15:\n",
              commands.size());
  for (size_t i = 0; i < commands.size() && i < 15; ++i) {
    std::printf("  %s\n", commands[i].c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.command == "train") return Train(args);
  if (args.command == "tune") return Tune(args);
  if (args.command == "inspect") return Inspect(args);
  std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
  return 2;
}
