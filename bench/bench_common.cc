#include "bench_common.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "benchmark/benchmark.h"
#include "nn/simd/dispatch.h"

namespace cdbtune::bench {

namespace {

/// First three fields of /proc/loadavg (1/5/15-minute load averages), or
/// "unavailable" on non-Linux hosts.
std::string ReadLoadAvg() {
  std::ifstream in("/proc/loadavg");
  std::string l1, l5, l15;
  if (!(in >> l1 >> l5 >> l15)) return "unavailable";
  return l1 + " " + l5 + " " + l15;
}

/// The first "model name" line of /proc/cpuinfo, or "unavailable".
std::string ReadCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::string key = "model name";
    if (line.compare(0, key.size(), key) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    size_t start = line.find_first_not_of(" \t", colon + 1);
    if (start == std::string::npos) break;
    return line.substr(start);
  }
  return "unavailable";
}

}  // namespace

void AddBenchEnvironmentContext() {
  benchmark::AddCustomContext("load_avg", ReadLoadAvg());
  benchmark::AddCustomContext("cpu_model", ReadCpuModel());
  benchmark::AddCustomContext("simd_tier",
                              nn::simd::TierName(nn::simd::ActiveTier()));
  benchmark::AddCustomContext(
      "threads", std::to_string(util::ComputeContext::Get().threads()));
  const char* env_threads = std::getenv("CDBTUNE_THREADS");
  benchmark::AddCustomContext(
      "cdbtune_threads_env",
      env_threads != nullptr && *env_threads != '\0' ? env_threads : "unset");
}

ContenderResult RunCdbTune(env::DbInterface& db, const knobs::KnobSpace& space,
                           const workload::WorkloadSpec& workload,
                           const Budgets& budgets,
                           std::unique_ptr<tuner::CdbTuner>* tuner_out) {
  tuner::CdbTuneOptions options;
  options.max_offline_steps = budgets.cdbtune_offline_steps;
  options.online_max_steps = budgets.cdbtune_online_steps;
  options.seed = budgets.seed;
  auto tuner = std::make_unique<tuner::CdbTuner>(&db, space, options);
  auto offline = tuner->OfflineTrain(workload);
  db.Reset();
  auto online = tuner->OnlineTune(workload);

  ContenderResult r;
  r.name = "CDBTune";
  r.throughput = online.best.throughput;
  r.latency_p99 = online.best.latency;
  r.steps = online.steps;
  r.convergence_iteration = offline.convergence_iteration;
  // Hand the trained model to callers that reuse it (adaptability sweeps).
  if (tuner_out != nullptr) *tuner_out = std::move(tuner);
  return r;
}

ContenderResult RunOtterTune(env::DbInterface& db,
                             const knobs::KnobSpace& space,
                             const workload::WorkloadSpec& workload,
                             const Budgets& budgets, bool use_dnn) {
  baselines::OtterTuneOptions options;
  options.online_steps = budgets.ottertune_online_steps;
  options.use_dnn = use_dnn;
  options.seed = budgets.seed + 1;
  baselines::OtterTune ottertune(&db, space, options);
  ottertune.CollectSamples(workload, budgets.ottertune_samples);
  db.Reset();
  auto result = ottertune.Tune(workload);
  ContenderResult r;
  r.name = use_dnn ? "OtterTune-DNN" : "OtterTune";
  r.throughput = result.best.throughput;
  r.latency_p99 = result.best.latency;
  r.steps = result.steps;
  return r;
}

ContenderResult RunBestConfig(env::DbInterface& db,
                              const knobs::KnobSpace& space,
                              const workload::WorkloadSpec& workload,
                              const Budgets& budgets) {
  baselines::BestConfigOptions options;
  options.budget = budgets.bestconfig_steps;
  options.seed = budgets.seed + 2;
  baselines::BestConfig bestconfig(&db, space, options);
  db.Reset();
  auto result = bestconfig.Search(workload);
  ContenderResult r;
  r.name = "BestConfig";
  r.throughput = result.best.throughput;
  r.latency_p99 = result.best.latency;
  r.steps = result.steps;
  return r;
}

ContenderResult RunDba(env::DbInterface& db,
                       const workload::WorkloadSpec& workload) {
  db.Reset();
  auto result = baselines::DbaTuner::TuneOnce(db, workload);
  ContenderResult r;
  r.name = "DBA";
  r.throughput = result.best.throughput;
  r.latency_p99 = result.best.latency;
  r.steps = result.steps;
  return r;
}

ContenderResult RunDefault(env::DbInterface& db,
                           const workload::WorkloadSpec& workload) {
  db.Reset();
  auto result = db.RunStress(workload, 150.0);
  ContenderResult r;
  r.name = "Default";
  if (result.ok()) {
    r.throughput = result.value().external.throughput_tps;
    r.latency_p99 = result.value().external.latency_p99_ms;
  }
  return r;
}

ContenderResult RunCdbDefault(env::DbInterface& db,
                              const workload::WorkloadSpec& workload) {
  db.Reset();
  knobs::Config tpl = baselines::DbaTuner::Recommend(
      db.registry(), db.hardware(), workload, db.registry().DefaultConfig(),
      /*knob_budget=*/10);
  ContenderResult r;
  r.name = "CDB-default";
  if (!db.ApplyConfig(tpl).ok()) return r;
  auto result = db.RunStress(workload, 150.0);
  if (result.ok()) {
    r.throughput = result.value().external.throughput_tps;
    r.latency_p99 = result.value().external.latency_p99_ms;
  }
  db.Reset();
  return r;
}

std::vector<ContenderResult> RunStandardContenders(
    const std::function<std::unique_ptr<env::SimulatedCdb>()>& make_db,
    const workload::WorkloadSpec& workload, const Budgets& budgets) {
  return ParallelSweep(6, [&](size_t cell) {
    auto db = make_db();
    knobs::KnobSpace space = knobs::KnobSpace::AllTunable(&db->registry());
    switch (cell) {
      case 0:
        return RunDefault(*db, workload);
      case 1:
        return RunCdbDefault(*db, workload);
      case 2:
        return RunBestConfig(*db, space, workload, budgets);
      case 3:
        return RunDba(*db, workload);
      case 4:
        return RunOtterTune(*db, space, workload, budgets);
      default:
        return RunCdbTune(*db, space, workload, budgets);
    }
  });
}

void RunKnobCountSweep(const std::string& title,
                       const workload::WorkloadSpec& workload,
                       const env::HardwareSpec& hardware,
                       const std::vector<size_t>& order,
                       const std::vector<size_t>& counts,
                       const Budgets& budgets) {
  util::PrintBanner(std::cout, title);
  util::TablePrinter thr({"knobs", "CDBTune T", "DBA T", "OtterTune T",
                          "BestConfig T"});
  util::TablePrinter lat({"knobs", "CDBTune L99", "DBA L99", "OtterTune L99",
                          "BestConfig L99"});
  // Each knob count is an independent sweep cell: it builds its own
  // instance and derives its seed from the count, so the table is the same
  // whether the cells run serially or side by side on the pool.
  struct SweepCell {
    ContenderResult cdbtune, dba, ottertune, bestconfig;
  };
  std::vector<SweepCell> cells =
      ParallelSweep(counts.size(), [&](size_t idx) {
        const size_t count = counts[idx];
        auto db = env::SimulatedCdb::MysqlCdb(hardware, budgets.seed);
        knobs::KnobSpace space =
            knobs::KnobSpace::FromOrderPrefix(&db->registry(), order, count);

        Budgets b = budgets;
        b.seed = budgets.seed + count;
        SweepCell cell;
        cell.cdbtune = RunCdbTune(*db, space, workload, b);

        // DBA restricted to the same subset.
        db->Reset();
        knobs::Config rec = baselines::DbaTuner::RecommendSubset(
            db->registry(), db->hardware(), workload, db->current_config(),
            space.active_indices());
        // The Figure 6/7 protocol deploys each contender's recommendation
        // for the given subset as-is (the paper's DBAs did, which is why
        // their curve declines once the subset outgrows their rules).
        cell.dba.name = "DBA";
        if (db->ApplyConfig(rec).ok()) {
          auto r = db->RunStress(workload, 150.0);
          if (r.ok()) {
            cell.dba.throughput = r.value().external.throughput_tps;
            cell.dba.latency_p99 = r.value().external.latency_p99_ms;
          }
        }

        cell.ottertune = RunOtterTune(*db, space, workload, b);
        cell.bestconfig = RunBestConfig(*db, space, workload, b);
        return cell;
      });
  for (size_t i = 0; i < counts.size(); ++i) {
    const SweepCell& cell = cells[i];
    thr.AddRow({std::to_string(counts[i]),
                util::TablePrinter::Num(cell.cdbtune.throughput, 1),
                util::TablePrinter::Num(cell.dba.throughput, 1),
                util::TablePrinter::Num(cell.ottertune.throughput, 1),
                util::TablePrinter::Num(cell.bestconfig.throughput, 1)});
    lat.AddRow({std::to_string(counts[i]),
                util::TablePrinter::Num(cell.cdbtune.latency_p99, 1),
                util::TablePrinter::Num(cell.dba.latency_p99, 1),
                util::TablePrinter::Num(cell.ottertune.latency_p99, 1),
                util::TablePrinter::Num(cell.bestconfig.latency_p99, 1)});
  }
  thr.Print(std::cout);
  lat.Print(std::cout);
}

void PrintContenders(const std::string& title,
                     const std::vector<ContenderResult>& rows) {
  util::PrintBanner(std::cout, title);
  util::TablePrinter table(
      {"tuner", "throughput (txn/s)", "99th %-tile (ms)", "steps"});
  for (const auto& r : rows) {
    table.AddRow({r.name, util::TablePrinter::Num(r.throughput, 1),
                  util::TablePrinter::Num(r.latency_p99, 1),
                  std::to_string(r.steps)});
  }
  table.Print(std::cout);
}

}  // namespace cdbtune::bench
