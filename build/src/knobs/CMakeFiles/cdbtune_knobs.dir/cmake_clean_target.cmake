file(REMOVE_RECURSE
  "libcdbtune_knobs.a"
)
