#include "baselines/ottertune.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "nn/optimizer.h"
#include "safety/apply.h"
#include "nn/sequential.h"
#include "util/check.h"
#include "util/logging.h"

namespace cdbtune::baselines {

std::vector<double> WorkloadFeatures(const workload::WorkloadSpec& spec) {
  return {
      spec.read_fraction,
      spec.scan_fraction,
      spec.insert_fraction,
      spec.access_skew,
      spec.sort_heavy_fraction,
      std::log1p(spec.working_set_gb),
      std::log1p(spec.data_size_gb),
      std::log1p(static_cast<double>(spec.client_threads)),
      std::log1p(spec.ops_per_txn),
  };
}

OtterTune::OtterTune(env::DbInterface* db, knobs::KnobSpace space,
                     OtterTuneOptions options)
    : db_(db),
      space_(std::move(space)),
      options_(std::move(options)),
      rng_(options_.seed) {
  CDBTUNE_CHECK(db_ != nullptr);
  if (options_.gp.length_scale <= 0.0) {
    options_.gp.length_scale =
        0.35 * std::sqrt(static_cast<double>(space_.action_dim()));
  }
}

void OtterTune::SetDatabase(env::DbInterface* db) {
  CDBTUNE_CHECK(db != nullptr);
  db_ = db;
}

void OtterTune::AddObservation(Observation observation) {
  CDBTUNE_CHECK(observation.action.size() == space_.action_dim())
      << "observation action dim mismatch";
  repository_.push_back(std::move(observation));
}

void OtterTune::CollectSamples(const workload::WorkloadSpec& spec, int count) {
  const knobs::Config base = db_->registry().DefaultConfig();
  // Baseline performance of the defaults, to score samples against.
  db_->Reset();
  auto baseline = db_->RunStress(spec, options_.stress_duration_s);
  if (!baseline.ok()) return;
  const double t0 = baseline.value().external.throughput_tps;
  const double l0 = baseline.value().external.latency_p99_ms;

  for (int i = 0; i < count; ++i) {
    std::vector<double> action(space_.action_dim());
    for (double& a : action) a = rng_.Uniform();
    knobs::Config config = space_.ActionToConfig(action, base);
    Observation obs;
    obs.action = action;
    obs.workload_features = WorkloadFeatures(spec);
    obs.workload_name = spec.name;
    if (!safety::ApplyConfig(*db_, config).ok()) {
      obs.score = -1.0;  // Crashed configuration: strongly undesirable.
      AddObservation(std::move(obs));
      continue;
    }
    auto result = db_->RunStress(spec, options_.stress_duration_s);
    if (!result.ok()) continue;
    obs.throughput = result.value().external.throughput_tps;
    obs.latency = result.value().external.latency_p99_ms;
    obs.score = 0.5 * (obs.throughput / t0) + 0.5 * (l0 / obs.latency);
    AddObservation(std::move(obs));
  }
  db_->Reset();
}

std::vector<size_t> OtterTune::RankKnobs() {
  CDBTUNE_CHECK(!repository_.empty()) << "RankKnobs needs observations";
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const Observation& obs : repository_) {
    x.push_back(obs.action);
    y.push_back(obs.score);
  }
  Lasso lasso;
  lasso.Fit(x, y);
  return lasso.RankFeatures();
}

std::vector<const Observation*> OtterTune::MapWorkload(
    const std::vector<double>& features) const {
  // Nearest stored workload by feature distance; all its observations seed
  // the surrogate.
  double best_distance = std::numeric_limits<double>::infinity();
  std::string best_name;
  for (const Observation& obs : repository_) {
    double d = 0.0;
    for (size_t i = 0; i < features.size(); ++i) {
      double diff = features[i] - obs.workload_features[i];
      d += diff * diff;
    }
    if (d < best_distance) {
      best_distance = d;
      best_name = obs.workload_name;
    }
  }
  std::vector<const Observation*> mapped;
  for (const Observation& obs : repository_) {
    if (obs.workload_name == best_name) mapped.push_back(&obs);
  }
  return mapped;
}

std::vector<double> OtterTune::ScoreCandidates(
    const std::vector<std::vector<double>>& train_x,
    const std::vector<double>& train_y,
    const std::vector<std::vector<double>>& candidates, double best_score) {
  std::vector<double> scores(candidates.size(),
                             -std::numeric_limits<double>::infinity());
  if (options_.use_dnn) {
    // "OtterTune with deep learning": an MLP regressor on the same data.
    const size_t d = space_.action_dim();
    util::Rng net_rng(options_.seed ^ 0x51ED2701);
    nn::Sequential net;
    net.Add(std::make_unique<nn::Linear>(d, 64, net_rng,
                                         nn::InitScheme::kXavierUniform));
    net.Add(std::make_unique<nn::Relu>());
    net.Add(std::make_unique<nn::Linear>(64, 32, net_rng,
                                         nn::InitScheme::kXavierUniform));
    net.Add(std::make_unique<nn::Relu>());
    net.Add(std::make_unique<nn::Linear>(32, 1, net_rng,
                                         nn::InitScheme::kXavierUniform));
    nn::Adam opt(net.Params(), 3e-3);
    nn::Matrix x(train_x.size(), d);
    nn::Matrix y(train_x.size(), 1);
    for (size_t i = 0; i < train_x.size(); ++i) {
      x.SetRow(i, train_x[i]);
      y.at(i, 0) = train_y[i];
    }
    for (int epoch = 0; epoch < options_.dnn_epochs; ++epoch) {
      net.ZeroGrad();
      nn::Matrix pred = net.Forward(x, /*training=*/true);
      nn::Matrix grad;
      nn::MseLoss(pred, y, &grad);
      net.Backward(grad);
      opt.Step();
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      nn::Matrix p = net.Forward(nn::Matrix::RowVector(candidates[c]),
                                 /*training=*/false);
      scores[c] = p.at(0, 0);
    }
    return scores;
  }

  GaussianProcess gp(options_.gp);
  const std::vector<std::vector<double>>* fit_x = &train_x;
  const std::vector<double>* fit_y = &train_y;
  std::vector<std::vector<double>> sub_x;
  std::vector<double> sub_y;
  if (train_x.size() > options_.gp_max_samples) {
    // Keep the best quarter plus a random slice of the rest.
    std::vector<size_t> order(train_x.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return train_y[a] > train_y[b]; });
    size_t keep_best = options_.gp_max_samples / 4;
    std::vector<size_t> chosen(order.begin(),
                               order.begin() + static_cast<long>(keep_best));
    std::vector<size_t> rest(order.begin() + static_cast<long>(keep_best),
                             order.end());
    rng_.Shuffle(rest);
    chosen.insert(chosen.end(), rest.begin(),
                  rest.begin() + static_cast<long>(options_.gp_max_samples -
                                                   keep_best));
    for (size_t idx : chosen) {
      sub_x.push_back(train_x[idx]);
      sub_y.push_back(train_y[idx]);
    }
    fit_x = &sub_x;
    fit_y = &sub_y;
  }
  util::Status fit = gp.Fit(*fit_x, *fit_y);
  if (!fit.ok()) {
    CDBTUNE_LOG(Warning) << "GP fit failed: " << fit.ToString();
    return scores;
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    (void)best_score;
    scores[c] = gp.Ucb(candidates[c], options_.ucb_kappa);
  }
  return scores;
}

BaselineResult OtterTune::Tune(const workload::WorkloadSpec& spec, int steps) {
  if (steps <= 0) steps = options_.online_steps;
  BaselineResult out;
  const knobs::Config base = db_->current_config();

  auto baseline = db_->RunStress(spec, options_.stress_duration_s);
  if (!baseline.ok()) return out;
  out.initial.throughput = baseline.value().external.throughput_tps;
  out.initial.latency = baseline.value().external.latency_p99_ms;
  out.best = out.initial;
  out.best_config = base;
  double best_score = 1.0;  // Score of the initial configuration.

  // Stage 1: workload mapping.
  std::vector<double> features = WorkloadFeatures(spec);
  std::vector<const Observation*> mapped = MapWorkload(features);

  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;
  for (const Observation* obs : mapped) {
    train_x.push_back(obs->action);
    train_y.push_back(obs->score);
  }
  // The incumbent starts at the best configuration the mapped workload's
  // history knows about; candidate perturbations concentrate there.
  std::vector<double> best_action = space_.ConfigToAction(out.best_config);
  double best_known = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < train_x.size(); ++i) {
    if (train_y[i] > best_known) {
      best_known = train_y[i];
      best_action = train_x[i];
    }
  }

  for (int step = 1; step <= steps; ++step) {
    // Candidates: uniform exploration plus local perturbations of the best
    // known action (OtterTune's gradient-free search around the incumbent).
    std::vector<std::vector<double>> candidates;
    candidates.reserve(static_cast<size_t>(options_.candidate_count));
    for (int c = 0; c < options_.candidate_count; ++c) {
      std::vector<double> a(space_.action_dim());
      if (c % 2 == 0) {
        for (double& v : a) v = rng_.Uniform();
      } else {
        for (size_t i = 0; i < a.size(); ++i) {
          a[i] = std::clamp(best_action[i] + rng_.Gaussian(0.0, 0.1), 0.0, 1.0);
        }
      }
      candidates.push_back(std::move(a));
    }

    std::vector<double> acq;
    if (!train_x.empty()) {
      acq = ScoreCandidates(train_x, train_y, candidates, best_score);
    } else {
      acq.assign(candidates.size(), 0.0);  // No data: arbitrary pick.
    }
    size_t pick = 0;
    for (size_t c = 1; c < candidates.size(); ++c) {
      if (acq[c] > acq[pick]) pick = c;
    }

    const std::vector<double>& action = candidates[pick];
    knobs::Config config = space_.ActionToConfig(action, base);
    Observation obs;
    obs.action = action;
    obs.workload_features = features;
    obs.workload_name = spec.name;

    double score;
    if (!safety::ApplyConfig(*db_, config).ok()) {
      ++out.crashes;
      score = -1.0;
      out.step_throughput.push_back(0.0);
    } else {
      auto result = db_->RunStress(spec, options_.stress_duration_s);
      if (!result.ok()) break;
      obs.throughput = result.value().external.throughput_tps;
      obs.latency = result.value().external.latency_p99_ms;
      score = 0.5 * (obs.throughput / out.initial.throughput) +
              0.5 * (out.initial.latency / obs.latency);
      out.step_throughput.push_back(obs.throughput);
      if (score > best_score) {
        best_score = score;
        out.best.throughput = obs.throughput;
        out.best.latency = obs.latency;
        out.best_config = db_->current_config();
      }
      if (score > best_known) {
        best_known = score;
        best_action = action;
      }
    }
    obs.score = score;
    train_x.push_back(action);
    train_y.push_back(score);
    AddObservation(std::move(obs));
    out.steps = step;
  }

  // Leave the instance on the best configuration found.
  util::Status final_deploy = safety::ApplyConfig(*db_, out.best_config);
  if (!final_deploy.ok()) {
    CDBTUNE_LOG(Warning) << "OtterTune final deploy failed: "
                         << final_deploy.ToString();
  }
  return out;
}

}  // namespace cdbtune::baselines
