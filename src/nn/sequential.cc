#include "nn/sequential.h"

// lint: allow(raw-checkpoint-write) — std::ifstream only: loads go
// through ReadFile/ifstream; every write goes through persist.
#include <fstream>
#include <sstream>

#include "persist/atomic_file.h"
#include "util/check.h"

namespace cdbtune::nn {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Matrix Sequential::Forward(const Matrix& input, bool training) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x, training);
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output, bool param_grads) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g, param_grads);
  }
  return g;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Sequential::ZeroGrad() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

size_t Sequential::NumParameters() {
  size_t n = 0;
  for (Parameter* p : Params()) n += p->value.size();
  return n;
}

void Sequential::CopyParamsFrom(Sequential& other) {
  auto dst = Params();
  auto src = other.Params();
  CDBTUNE_CHECK(dst.size() == src.size()) << "architecture mismatch in copy";
  for (size_t i = 0; i < dst.size(); ++i) {
    CDBTUNE_CHECK(dst[i]->value.SameShape(src[i]->value))
        << "parameter shape mismatch at index " << i;
    dst[i]->value = src[i]->value;
  }
}

void Sequential::CopyStateFrom(const Sequential& other) {
  persist::Encoder enc;
  other.SaveBinary(enc);
  persist::Decoder dec(enc.bytes());
  util::Status status = LoadBinary(dec);
  CDBTUNE_CHECK(status.ok()) << "CopyStateFrom architecture mismatch: "
                             << status.ToString();
}

void Sequential::SoftUpdateFrom(Sequential& source, double tau) {
  auto dst = Params();
  auto src = source.Params();
  CDBTUNE_CHECK(dst.size() == src.size()) << "architecture mismatch in update";
  for (size_t i = 0; i < dst.size(); ++i) {
    Matrix& dm = dst[i]->value;
    const Matrix& sm = src[i]->value;
    CDBTUNE_CHECK(dm.SameShape(sm)) << "parameter shape mismatch at index " << i;
    double* __restrict__ d = dm.data();
    const double* __restrict__ s = sm.data();
    const size_t n = dm.size();
    const double keep = 1.0 - tau;
    for (size_t j = 0; j < n; ++j) d[j] = tau * s[j] + keep * d[j];
  }
}

void Sequential::Save(std::ostream& os) const {
  os << "cdbtune-model-v1 " << layers_.size() << "\n";
  for (const auto& layer : layers_) {
    os << layer->Name() << "\n";
    layer->SaveState(os);
  }
}

util::Status Sequential::SaveToFile(const std::string& path) const {
  std::ostringstream os;
  Save(os);
  return persist::AtomicWriteFile(path, os.str());
}

void Sequential::Load(std::istream& is) {
  std::string magic;
  size_t count = 0;
  is >> magic >> count;
  CDBTUNE_CHECK(magic == "cdbtune-model-v1") << "bad model file magic";
  CDBTUNE_CHECK(count == layers_.size())
      << "model file has " << count << " layers, network has "
      << layers_.size();
  for (auto& layer : layers_) {
    std::string name;
    is >> name;
    CDBTUNE_CHECK(name == layer->Name())
        << "layer type mismatch: file " << name << " vs " << layer->Name();
    layer->LoadState(is);
  }
}

util::Status Sequential::LoadFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return util::Status::NotFound("cannot open " + path);
  Load(is);
  return util::Status::Ok();
}

void Sequential::SaveBinary(persist::Encoder& enc) const {
  enc.WriteU32(static_cast<uint32_t>(layers_.size()));
  for (const auto& layer : layers_) {
    enc.WriteString(layer->Name());
    layer->SaveBinary(enc);
  }
}

util::Status Sequential::LoadBinary(persist::Decoder& dec) {
  uint32_t count = 0;
  if (!dec.ReadU32(&count)) return dec.status();
  if (count != layers_.size()) {
    return util::Status::DataLoss(
        "checkpoint has " + std::to_string(count) + " layers, network has " +
        std::to_string(layers_.size()));
  }
  for (auto& layer : layers_) {
    std::string name;
    if (!dec.ReadString(&name)) return dec.status();
    if (name != layer->Name()) {
      return util::Status::DataLoss("checkpoint layer type mismatch: file " +
                                    name + " vs network " + layer->Name());
    }
    CDBTUNE_RETURN_IF_ERROR(layer->LoadBinary(dec));
  }
  return util::Status::Ok();
}

double MseLoss(const Matrix& prediction, const Matrix& target, Matrix* grad) {
  CDBTUNE_CHECK(prediction.SameShape(target)) << "MSE shape mismatch";
  Matrix diff = prediction - target;
  double loss = diff.MeanSquare();
  if (grad != nullptr) {
    *grad = diff;
    grad->Scale(2.0 / static_cast<double>(diff.size()));
  }
  return loss;
}

}  // namespace cdbtune::nn
