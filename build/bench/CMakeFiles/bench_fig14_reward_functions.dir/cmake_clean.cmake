file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_reward_functions.dir/bench_fig14_reward_functions.cc.o"
  "CMakeFiles/bench_fig14_reward_functions.dir/bench_fig14_reward_functions.cc.o.d"
  "bench_fig14_reward_functions"
  "bench_fig14_reward_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_reward_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
