#include "safety/guarded_policy.h"

#include <utility>

#include "util/check.h"

namespace cdbtune::safety {

GuardedPolicySource::GuardedPolicySource(tuner::PolicySource* inner,
                                         Guardrail* guard)
    : inner_(inner), guard_(guard) {
  CDBTUNE_CHECK(inner_ != nullptr);
  CDBTUNE_CHECK(guard_ != nullptr);
}

std::vector<double> GuardedPolicySource::ProposeAction(
    const std::vector<double>& state, bool explore) {
  return guard_->ClipAction(inner_->ProposeAction(state, explore));
}

std::vector<double> GuardedPolicySource::BestKnownAction() const {
  std::vector<double> action = inner_->BestKnownAction();
  // Empty means "no offline candidate" — the session falls back to
  // ProposeAction, which clips there instead.
  if (action.empty()) return action;
  return guard_->ClipAction(std::move(action));
}

}  // namespace cdbtune::safety
