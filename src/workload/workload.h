#ifndef CDBTUNE_WORKLOAD_WORKLOAD_H_
#define CDBTUNE_WORKLOAD_WORKLOAD_H_

#include <string>

namespace cdbtune::workload {

/// The six benchmark workload families used in the paper's evaluation
/// (Section 5, "Workload"), plus replayed user traces (Section 2.2.1).
enum class WorkloadType {
  kSysbenchReadOnly,
  kSysbenchWriteOnly,
  kSysbenchReadWrite,
  kTpcc,
  kTpch,
  kYcsb,
  kReplay,
};

const char* WorkloadTypeName(WorkloadType type);

/// Parametric description of a query workload.
///
/// Two consumers: (1) the operation-level generator that drives the mini
/// storage engine with actual reads/writes/scans, and (2) the analytic CDB
/// model, which needs exactly these aggregate features (mix, skew, working
/// set, concurrency) to compute a throughput/latency response.
struct WorkloadSpec {
  WorkloadType type = WorkloadType::kSysbenchReadWrite;
  std::string name;

  /// Fraction of operations that read (0 = pure write, 1 = read only).
  double read_fraction = 0.5;
  /// Of the reads, fraction that are range scans rather than point lookups.
  double scan_fraction = 0.0;
  /// Average rows touched by one range scan.
  double scan_length = 100.0;
  /// Of the writes, fraction that insert new rows (vs. update in place).
  double insert_fraction = 0.1;

  /// Total resident data and the hot subset the workload actually touches.
  double data_size_gb = 8.5;
  double working_set_gb = 8.5;

  /// Zipfian skew theta in [0, 1): 0 = uniform access.
  double access_skew = 0.0;

  /// Offered concurrency (Sysbench --threads, TPC-C connections, ...).
  int client_threads = 32;

  /// Mean operations per transaction (commit boundary cadence).
  double ops_per_txn = 1.0;

  /// Fraction of queries that need large sort/join memory (OLAP pressure on
  /// sort_buffer_size / join_buffer_size-class knobs).
  double sort_heavy_fraction = 0.0;

  /// Returns true when the two specs describe a similar load; used by the
  /// OtterTune-style workload mapping stage.
  double DistanceTo(const WorkloadSpec& other) const;
};

/// Factory functions with the paper's published setups.

/// Sysbench: 16 tables x 200K rows (~8.5 GB), 1500 client threads.
WorkloadSpec SysbenchReadOnly();
WorkloadSpec SysbenchWriteOnly();
WorkloadSpec SysbenchReadWrite();

/// TPC-C: 200 warehouses (~12.8 GB), 32 connections, OLTP mix.
WorkloadSpec Tpcc();

/// TPC-H: ~16 GB, scan/sort heavy OLAP.
WorkloadSpec Tpch();

/// YCSB: ~35 GB, 50 threads, zipfian-skewed 50/50 read-update mix.
WorkloadSpec Ycsb();

/// Returns the factory output for `type` (kReplay is invalid here).
WorkloadSpec MakeWorkload(WorkloadType type);

}  // namespace cdbtune::workload

#endif  // CDBTUNE_WORKLOAD_WORKLOAD_H_
