// Lint fixture (never compiled): raw socket I/O outside the two sanctioned
// homes (src/server/io, src/server/net). The include and each raw syscall
// below must be flagged by the blocking-socket rule — socket shutdown
// semantics live only in audited transport code.
#include <sys/socket.h>

namespace cdbtune::tuner {

int PhoneHome(const char* payload, int len) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (::connect(fd, nullptr, 0) != 0) return -1;
  return static_cast<int>(::send(fd, payload, len, 0));
}

}  // namespace cdbtune::tuner
