file(REMOVE_RECURSE
  "libcdbtune_util.a"
)
