#ifndef CDBTUNE_BASELINES_OTTERTUNE_H_
#define CDBTUNE_BASELINES_OTTERTUNE_H_

#include <string>
#include <vector>

#include "baselines/baseline_result.h"
#include "baselines/gp.h"
#include "baselines/lasso.h"
#include "env/db_interface.h"
#include "knobs/registry.h"
#include "util/random.h"
#include "workload/workload.h"

namespace cdbtune::baselines {

/// One historical tuning observation in OtterTune's repository.
struct Observation {
  /// Normalized values of the active knobs.
  std::vector<double> action;
  /// Feature vector of the workload that produced it (used for mapping).
  std::vector<double> workload_features;
  /// Composite performance score (higher is better), comparable across
  /// observations of the same workload.
  double score = 0.0;
  double throughput = 0.0;
  double latency = 0.0;
  std::string workload_name;
};

/// Extracts the mapping features from a workload spec.
std::vector<double> WorkloadFeatures(const workload::WorkloadSpec& spec);

struct OtterTuneOptions {
  /// Online recommendation steps per tuning request (Table 2: 11).
  int online_steps = 11;
  /// Candidate configurations scored by the surrogate per step.
  int candidate_count = 600;
  /// UCB exploration factor.
  double ucb_kappa = 1.5;
  /// GP kernel options. A non-positive length_scale means "auto": it is set
  /// to 0.35 * sqrt(action_dim) at construction — in a d-dimensional unit
  /// cube random points sit ~sqrt(d/6) apart, so a fixed small length scale
  /// would make every observation look uncorrelated and reduce the GP to
  /// its prior.
  GaussianProcess::Options gp{.length_scale = 0.0};
  /// "OtterTune with deep learning" (Figure 1): replaces GP regression with
  /// an MLP regressor over the same pipeline.
  bool use_dnn = false;
  int dnn_epochs = 120;
  /// GP fitting is O(n^3); past this many observations the surrogate fits
  /// on a subsample (best-scoring observations plus a random slice), the
  /// same pruning trade-off the real OtterTune makes to keep GP regression
  /// tractable as its repository grows.
  size_t gp_max_samples = 600;
  double stress_duration_s = 150.0;
  uint64_t seed = 23;
};

/// Reproduction of the OtterTune pipeline (Van Aken et al. 2017) as the
/// paper evaluates it: offline repository of observations -> workload
/// mapping (nearest historical workload) -> knob ranking (Lasso) -> GP
/// regression surrogate -> candidate search with UCB -> iterate online.
///
/// The pipelined structure — each stage optimized in isolation — is exactly
/// what CDBTune's end-to-end design replaces (Section 1, limitation 1).
class OtterTune {
 public:
  OtterTune(env::DbInterface* db, knobs::KnobSpace space,
            OtterTuneOptions options);

  /// Loads one historical observation (accumulated samples + the paper's
  /// DBA experience data, Section 5 "DBA Data").
  void AddObservation(Observation observation);

  /// Cold data collection: evaluates `count` random configurations under
  /// `spec` and stores them as observations. This is the "training data"
  /// axis of Figures 1a/1b.
  void CollectSamples(const workload::WorkloadSpec& spec, int count);

  /// Knob importance order from Lasso over the stored observations
  /// (the ranking used by Figure 7). Indices are into the active knob list.
  std::vector<size_t> RankKnobs();

  /// One online tuning request: maps the workload, fits the surrogate,
  /// iterates `online_steps` recommend-deploy-measure rounds and returns
  /// the best configuration found.
  BaselineResult Tune(const workload::WorkloadSpec& spec, int steps = -1);

  size_t repository_size() const { return repository_.size(); }
  void SetDatabase(env::DbInterface* db);

 private:
  /// Observations of the nearest historical workload (the mapping stage).
  std::vector<const Observation*> MapWorkload(
      const std::vector<double>& features) const;

  /// Fits the configured surrogate on (action, score) pairs and returns the
  /// acquisition value of each candidate.
  std::vector<double> ScoreCandidates(
      const std::vector<std::vector<double>>& train_x,
      const std::vector<double>& train_y,
      const std::vector<std::vector<double>>& candidates, double best_score);

  env::DbInterface* db_;  // Not owned.
  knobs::KnobSpace space_;
  OtterTuneOptions options_;
  util::Rng rng_;
  std::vector<Observation> repository_;
};

}  // namespace cdbtune::baselines

#endif  // CDBTUNE_BASELINES_OTTERTUNE_H_
