#ifndef CDBTUNE_ENGINE_WAL_H_
#define CDBTUNE_ENGINE_WAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/common.h"
#include "engine/disk_manager.h"
#include "util/status.h"

namespace cdbtune::engine {

/// Redo durability policy, mirroring innodb_flush_log_at_trx_commit.
enum class WalFlushPolicy {
  kLazy = 0,           // Buffer in memory; background flush ~once a second.
  kFsyncPerCommit = 1, // Write + fsync at every commit (group committed).
  kWritePerCommit = 2, // Write to the OS at commit; fsync lazily.
};

/// One logical redo record: enough to re-apply a row modification during
/// crash recovery.
struct RedoRecord {
  uint64_t lsn = 0;
  uint64_t key = 0;
  bool is_insert = false;  // false = update in place.
  char payload[kRecordPayload] = {};
};

struct WalOptions {
  uint64_t file_size_bytes = 48ull * 1024 * 1024;
  uint32_t files_in_group = 2;
  uint64_t log_buffer_bytes = 16ull * 1024 * 1024;
  WalFlushPolicy flush_policy = WalFlushPolicy::kFsyncPerCommit;
  /// Concurrent committers sharing one fsync (group commit).
  uint32_t group_commit_size = 8;
  /// Fraction of total capacity that forces a checkpoint.
  double checkpoint_fill = 0.8;
};

/// Write-ahead log on the virtual-time disk: N rotating files whose byte
/// capacity is reserved on the disk up front (so an oversized configuration
/// genuinely fails to start — the paper's crash scenario), a log buffer
/// that spills when full, commit-time durability per policy, a checkpoint
/// trigger when the group fills, and enough retained redo content to
/// support crash recovery:
///
///   - records up to durable_lsn() survive a crash (they were fsynced);
///   - the buffer pool calls MakeDurableUpTo before writing out a dirty
///     page (the WAL-before-data rule), so on-disk pages never contain
///     updates the log could lose.
class Wal {
 public:
  /// Fails with kOutOfRange when the group's reservation exceeds the disk.
  static util::StatusOr<std::unique_ptr<Wal>> Create(DiskManager* disk,
                                                     VirtualClock* clock,
                                                     WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one redo record of `bytes` without content (metadata-only
  /// traffic: index maintenance, purge, ...); spills the buffer when full.
  void Append(uint64_t bytes);

  /// Appends a content-carrying redo record (row modification) that
  /// recovery can replay. Returns the record's LSN.
  uint64_t AppendRecord(uint64_t key, bool is_insert, const char* payload,
                        uint64_t bytes);

  /// Commit-time durability work per policy. Returns the LSN made durable
  /// so far (commits beyond it are still volatile under lazy policies).
  uint64_t Commit();

  /// Forces every record with lsn <= `lsn` to stable storage (used by the
  /// buffer pool before writing a page whose newest change is `lsn`).
  void MakeDurableUpTo(uint64_t lsn);

  /// True when accumulated redo since the last checkpoint exceeds the fill
  /// threshold; the engine must flush the buffer pool and call
  /// CheckpointComplete (the stall small redo logs cause).
  bool NeedsCheckpoint() const;
  void CheckpointComplete();

  /// Records with checkpoint_lsn < lsn <= durable_lsn, in LSN order —
  /// exactly what crash recovery must replay.
  std::vector<RedoRecord> RecoverableRecords() const;

  uint64_t capacity_bytes() const {
    return options_.file_size_bytes * options_.files_in_group;
  }
  uint64_t lsn() const { return lsn_; }
  uint64_t durable_lsn() const { return durable_lsn_; }
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  uint64_t bytes_since_checkpoint() const { return bytes_since_checkpoint_; }

  /// LSN bookkeeping validation: checkpoint_lsn <= durable_lsn <=
  /// written_lsn <= lsn, and the retained redo records carry strictly
  /// increasing LSNs no newer than the log head. O(records); debug builds
  /// run it at every checkpoint, tests on demand.
  util::Status CheckInvariants() const;

  // Cumulative counters.
  uint64_t log_writes() const { return log_writes_; }
  uint64_t log_waits() const { return log_waits_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  Wal(DiskManager* disk, VirtualClock* clock, WalOptions options);

  void FlushBuffer();
  void Fsync();

  DiskManager* disk_;    // Not owned.
  VirtualClock* clock_;  // Not owned.
  WalOptions options_;
  uint64_t lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  uint64_t buffered_bytes_ = 0;
  /// LSN of the newest record already written to the OS (survives an
  /// engine crash only once fsynced -> durable_lsn_).
  uint64_t written_lsn_ = 0;
  uint64_t commits_since_fsync_ = 0;
  uint64_t log_writes_ = 0;
  uint64_t log_waits_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t checkpoints_ = 0;
  /// Content-carrying records since the last checkpoint, LSN-ordered.
  std::vector<RedoRecord> records_;
};

}  // namespace cdbtune::engine

#endif  // CDBTUNE_ENGINE_WAL_H_
