file(REMOVE_RECURSE
  "libcdbtune_workload.a"
)
