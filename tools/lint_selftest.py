#!/usr/bin/env python3
"""Self-test for tools/lint.py against the fixture tree.

Runs the linter with --root tools/lint_fixtures (so the fixture's src/
subtree is dir-gated exactly like the real src/) and asserts:

  - each bad_*.cc fixture produces exactly the expected (rule, count)
    findings — the dir-gated rules actually fire;
  - each good_*.cc fixture produces none — wrapper usage, locked notifies,
    sanctioned-directory intrinsics, and justified allow() suppressions
    are all accepted.

Run directly or via tools/run_checks.sh. Exit 0 on success.
"""

from __future__ import annotations

import subprocess
import sys
from collections import Counter
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
FIXTURES = TOOLS / "lint_fixtures"

# Every rule the fixtures exercise, per bad fixture, with how many findings
# each must produce. Findings in any file listed in GOOD are failures.
EXPECTED_BAD = {
    "bad_locks.cc": Counter({
        "raw-mutex": 4,        # two includes, one global, one lock_guard line
        "naked-notify": 1,
        "atomic-ordering": 1,
    }),
    "bad_intrinsics.cc": Counter({
        "raw-intrinsics": 3,   # the include, the __m128d decl, the _mm call
    }),
}
GOOD = ["good_locks.cc", "good_intrinsics.cc"]


def run_lint() -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, str(TOOLS / "lint.py"), "--root", str(FIXTURES)],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    code, output = run_lint()
    failures: list[str] = []

    if code == 0:
        failures.append("linter exited 0 on a fixture tree with violations")

    bad: dict[str, Counter] = {name: Counter() for name in EXPECTED_BAD}
    for line in output.splitlines():
        if "[" not in line:
            continue
        rule = line.split("[", 1)[1].split("]", 1)[0]
        for name, counts in bad.items():
            if name in line:
                counts[rule] += 1
        for name in GOOD:
            if name in line:
                failures.append(f"good fixture flagged: {line.strip()}")

    for name, expected in EXPECTED_BAD.items():
        got = bad[name]
        for rule, want in expected.items():
            if got.get(rule, 0) != want:
                failures.append(
                    f"rule {rule}: expected {want} finding(s) in {name}, "
                    f"got {got.get(rule, 0)}")
        for rule in got:
            if rule not in expected:
                failures.append(f"unexpected rule fired on {name}: {rule}")

    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("\nlinter output was:\n" + output, file=sys.stderr)
        return 1
    total = sum(sum(c.values()) for c in EXPECTED_BAD.values())
    print(f"lint self-test: ok ({total} expected findings fired across "
          f"{len(EXPECTED_BAD)} bad fixtures, {len(GOOD)} good fixtures clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
