#include "rl/ddpg.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "persist/atomic_file.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cdbtune::rl {

using nn::Matrix;

void SaveDdpgOptionsBinary(persist::Encoder& enc, const DdpgOptions& o) {
  enc.WriteU64(o.state_dim);
  enc.WriteU64(o.action_dim);
  enc.WriteU64(o.actor_hidden.size());
  for (size_t w : o.actor_hidden) enc.WriteU64(w);
  enc.WriteU64(o.critic_embed);
  enc.WriteU64(o.critic_hidden.size());
  for (size_t w : o.critic_hidden) enc.WriteU64(w);
  enc.WriteDouble(o.actor_lr);
  enc.WriteDouble(o.critic_lr);
  enc.WriteDouble(o.gamma);
  enc.WriteDouble(o.tau);
  enc.WriteU64(o.batch_size);
  enc.WriteU64(o.replay_capacity);
  enc.WriteBool(o.prioritized_replay);
  enc.WriteDouble(o.dropout_rate);
  enc.WriteDouble(o.leaky_slope);
  enc.WriteDouble(o.noise_sigma);
  enc.WriteDouble(o.noise_theta);
  enc.WriteDouble(o.noise_decay);
  enc.WriteDouble(o.min_noise_sigma);
  enc.WriteDouble(o.grad_clip);
  enc.WriteU64(o.seed);
}

util::Status LoadDdpgOptionsBinary(persist::Decoder& dec, DdpgOptions* out) {
  DdpgOptions o;
  uint64_t state_dim = 0, action_dim = 0, actor_layers = 0;
  if (!dec.ReadU64(&state_dim) || !dec.ReadU64(&action_dim) ||
      !dec.ReadU64(&actor_layers)) {
    return dec.status();
  }
  // A corrupt layer count would otherwise drive a giant resize; the layer
  // list cannot be larger than the remaining payload.
  if (actor_layers > dec.remaining() / 8) return util::Status::DataLoss(
      "implausible actor layer count in options chunk");
  o.state_dim = state_dim;
  o.action_dim = action_dim;
  o.actor_hidden.resize(actor_layers);
  for (size_t i = 0; i < actor_layers; ++i) {
    uint64_t w = 0;
    if (!dec.ReadU64(&w)) return dec.status();
    o.actor_hidden[i] = w;
  }
  uint64_t critic_embed = 0, critic_layers = 0;
  if (!dec.ReadU64(&critic_embed) || !dec.ReadU64(&critic_layers)) {
    return dec.status();
  }
  if (critic_layers > dec.remaining() / 8) return util::Status::DataLoss(
      "implausible critic layer count in options chunk");
  o.critic_embed = critic_embed;
  o.critic_hidden.resize(critic_layers);
  for (size_t i = 0; i < critic_layers; ++i) {
    uint64_t w = 0;
    if (!dec.ReadU64(&w)) return dec.status();
    o.critic_hidden[i] = w;
  }
  uint64_t batch_size = 0, replay_capacity = 0, seed = 0;
  if (!dec.ReadDouble(&o.actor_lr) || !dec.ReadDouble(&o.critic_lr) ||
      !dec.ReadDouble(&o.gamma) || !dec.ReadDouble(&o.tau) ||
      !dec.ReadU64(&batch_size) || !dec.ReadU64(&replay_capacity) ||
      !dec.ReadBool(&o.prioritized_replay) ||
      !dec.ReadDouble(&o.dropout_rate) || !dec.ReadDouble(&o.leaky_slope) ||
      !dec.ReadDouble(&o.noise_sigma) || !dec.ReadDouble(&o.noise_theta) ||
      !dec.ReadDouble(&o.noise_decay) || !dec.ReadDouble(&o.min_noise_sigma) ||
      !dec.ReadDouble(&o.grad_clip) || !dec.ReadU64(&seed)) {
    return dec.status();
  }
  o.batch_size = batch_size;
  o.replay_capacity = replay_capacity;
  o.seed = seed;
  *out = std::move(o);
  return util::Status::Ok();
}

std::string DdpgOptionsDiff(const DdpgOptions& a, const DdpgOptions& b) {
  if (a.state_dim != b.state_dim) return "state_dim";
  if (a.action_dim != b.action_dim) return "action_dim";
  if (a.actor_hidden != b.actor_hidden) return "actor_hidden";
  if (a.critic_embed != b.critic_embed) return "critic_embed";
  if (a.critic_hidden != b.critic_hidden) return "critic_hidden";
  if (a.actor_lr != b.actor_lr) return "actor_lr";
  if (a.critic_lr != b.critic_lr) return "critic_lr";
  if (a.gamma != b.gamma) return "gamma";
  if (a.tau != b.tau) return "tau";
  if (a.batch_size != b.batch_size) return "batch_size";
  if (a.replay_capacity != b.replay_capacity) return "replay_capacity";
  if (a.prioritized_replay != b.prioritized_replay) return "prioritized_replay";
  if (a.dropout_rate != b.dropout_rate) return "dropout_rate";
  if (a.leaky_slope != b.leaky_slope) return "leaky_slope";
  if (a.noise_sigma != b.noise_sigma) return "noise_sigma";
  if (a.noise_theta != b.noise_theta) return "noise_theta";
  if (a.noise_decay != b.noise_decay) return "noise_decay";
  if (a.min_noise_sigma != b.min_noise_sigma) return "min_noise_sigma";
  if (a.grad_clip != b.grad_clip) return "grad_clip";
  if (a.seed != b.seed) return "seed";
  return "";
}

DdpgAgent::DdpgAgent(DdpgOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      actor_(BuildActor()),
      critic_(BuildCritic()),
      actor_target_(BuildActor()),
      critic_target_(BuildCritic()),
      noise_(options_.action_dim, options_.noise_theta, options_.noise_sigma,
             util::Rng(options_.seed ^ 0x9E3779B97F4A7C15ULL)) {
  actor_target_.CopyParamsFrom(actor_);
  critic_target_.CopyParamsFrom(critic_);
  actor_opt_ = std::make_unique<nn::Adam>(actor_.Params(), options_.actor_lr);
  critic_opt_ =
      std::make_unique<nn::Adam>(critic_.Params(), options_.critic_lr);
  if (options_.prioritized_replay) {
    replay_ = std::make_unique<PrioritizedReplay>(options_.replay_capacity);
  } else {
    replay_ = std::make_unique<UniformReplay>(options_.replay_capacity);
  }
}

nn::Sequential DdpgAgent::BuildActor() {
  // Paper Table 5 (actor): Input 63 -> FC 128 -> LeakyReLU(0.2) ->
  // BatchNorm -> FC 128 -> Tanh -> Dropout(0.3) -> FC 128 -> Tanh ->
  // FC 64 -> Tanh -> Output #Knobs (sigmoid squash into the normalized
  // knob cube).
  nn::Sequential net;
  CDBTUNE_CHECK(!options_.actor_hidden.empty()) << "actor needs hidden layers";
  size_t in = options_.state_dim;
  for (size_t i = 0; i < options_.actor_hidden.size(); ++i) {
    size_t out = options_.actor_hidden[i];
    net.Add(std::make_unique<nn::Linear>(in, out, rng_));
    if (i == 0) {
      net.Add(std::make_unique<nn::LeakyRelu>(options_.leaky_slope));
      net.Add(std::make_unique<nn::BatchNorm>(out));
    } else {
      net.Add(std::make_unique<nn::Tanh>());
      if (i == 1 && options_.dropout_rate > 0.0) {
        net.Add(std::make_unique<nn::Dropout>(options_.dropout_rate, rng_));
      }
    }
    in = out;
  }
  net.Add(std::make_unique<nn::Linear>(in, options_.action_dim, rng_));
  net.Add(std::make_unique<nn::Sigmoid>());
  return net;
}

nn::Sequential DdpgAgent::BuildCritic() {
  // Paper Table 5 (critic): Input (#Knobs + 63) -> Parallel FC (128 + 128)
  // -> FC 256 -> LeakyReLU(0.2) -> BatchNorm -> FC -> Dropout(0.3) ->
  // FC 64 -> Tanh -> Output 1. Critic learnable parameters initialize
  // Normal(0, 0.01) per Table 4.
  nn::Sequential net;
  net.Add(std::make_unique<nn::ParallelLinear>(
      options_.state_dim, options_.critic_embed, options_.action_dim,
      options_.critic_embed, rng_, nn::InitScheme::kGaussian001));
  size_t in = 2 * options_.critic_embed;
  for (size_t i = 0; i < options_.critic_hidden.size(); ++i) {
    size_t out = options_.critic_hidden[i];
    net.Add(std::make_unique<nn::Linear>(in, out, rng_,
                                         nn::InitScheme::kGaussian001));
    if (i == 0) {
      net.Add(std::make_unique<nn::LeakyRelu>(options_.leaky_slope));
      net.Add(std::make_unique<nn::BatchNorm>(out));
      if (options_.dropout_rate > 0.0) {
        net.Add(std::make_unique<nn::Dropout>(options_.dropout_rate, rng_));
      }
    } else {
      net.Add(std::make_unique<nn::Tanh>());
    }
    in = out;
  }
  net.Add(
      std::make_unique<nn::Linear>(in, 1, rng_, nn::InitScheme::kGaussian001));
  return net;
}

Matrix DdpgAgent::CriticInput(const Matrix& states, const Matrix& actions) {
  return states.ConcatCols(actions);
}

std::vector<double> DdpgAgent::SelectAction(const std::vector<double>& state,
                                            bool explore) {
  return SelectAction(state, explore ? &noise_ : nullptr);
}

std::vector<double> DdpgAgent::SelectAction(const std::vector<double>& state,
                                            ActionNoise* noise) {
  CDBTUNE_CHECK(state.size() == options_.state_dim) << "state dim mismatch";
  Matrix s = Matrix::RowVector(state);
  Matrix a = actor_.Forward(s, /*training=*/false);
  std::vector<double> action = a.Row(0);
  if (noise != nullptr) {
    std::vector<double> n = noise->Sample();
    CDBTUNE_CHECK_EQ(n.size(), action.size()) << "noise dim mismatch";
    for (size_t i = 0; i < action.size(); ++i) {
      action[i] = std::clamp(action[i] + n[i], 0.0, 1.0);
    }
  }
  return action;
}

void DdpgAgent::Observe(Transition transition) {
  CDBTUNE_CHECK(transition.state.size() == options_.state_dim);
  CDBTUNE_CHECK(transition.action.size() == options_.action_dim);
  CDBTUNE_CHECK(transition.next_state.size() == options_.state_dim);
  replay_->Add(std::move(transition));
}

TrainStats DdpgAgent::TrainStep() {
  TrainStats stats;
  const size_t batch = options_.batch_size;
  if (replay_->size() < batch) return stats;

  SampleBatch sample = replay_->Sample(batch, rng_);
  Matrix states(batch, options_.state_dim);
  Matrix actions(batch, options_.action_dim);
  Matrix next_states(batch, options_.state_dim);
  std::vector<double> rewards(batch);
  std::vector<bool> terminal(batch);
  for (size_t i = 0; i < batch; ++i) {
    const Transition& t = *sample.items[i];
    std::copy(t.state.begin(), t.state.end(),
              states.data() + i * options_.state_dim);
    std::copy(t.action.begin(), t.action.end(),
              actions.data() + i * options_.action_dim);
    std::copy(t.next_state.begin(), t.next_state.end(),
              next_states.data() + i * options_.state_dim);
    rewards[i] = t.reward;
    terminal[i] = t.terminal;
  }

  // ---- Critic update (Algorithm 1, steps 2-6) ---------------------------
  // y_i = r_i + gamma * Q'(s_{i+1}, mu'(s_{i+1})).
  //
  // The target-network pass (actor' -> critic') and the online critic's
  // forward on (s, a) touch disjoint networks and only the latter draws from
  // rng_ (dropout), so they run concurrently on the compute pool; the rng
  // stream and all per-network state advance exactly as in serial order.
  Matrix targets(batch, 1);
  Matrix q;
  critic_.ZeroGrad();
  util::ComputeContext::Get().RunConcurrent(
      {[&] {
         Matrix next_actions =
             actor_target_.Forward(next_states, /*training=*/false);
         Matrix next_q = critic_target_.Forward(
             CriticInput(next_states, next_actions), /*training=*/false);
         for (size_t i = 0; i < batch; ++i) {
           double bootstrap =
               terminal[i] ? 0.0 : options_.gamma * next_q.at(i, 0);
           targets.at(i, 0) = rewards[i] + bootstrap;
         }
       },
       [&] {
         q = critic_.Forward(CriticInput(states, actions), /*training=*/true);
       }});
  // Importance-weighted MSE: grad_i = 2 * w_i * (q_i - y_i) / batch.
  Matrix grad(batch, 1);
  double loss = 0.0;
  std::vector<double> td_errors(batch);
  for (size_t i = 0; i < batch; ++i) {
    double diff = q.at(i, 0) - targets.at(i, 0);
    td_errors[i] = diff;
    double w = sample.weights[i];
    loss += w * diff * diff;
    grad.at(i, 0) = 2.0 * w * diff / static_cast<double>(batch);
  }
  loss /= static_cast<double>(batch);
  critic_.Backward(grad);
  critic_opt_->ClipGradNorm(options_.grad_clip);
  critic_opt_->Step();
  replay_->UpdatePriorities(sample.indices, td_errors);

  // ---- Actor update (Algorithm 1, step 7) -------------------------------
  // Maximize Q(s, mu(s)): push -dQ/da through the actor. The critic is only
  // differentiated *through* here — param_grads=false skips its
  // weight-gradient GEMMs entirely instead of computing and discarding them.
  actor_.ZeroGrad();
  Matrix policy_actions = actor_.Forward(states, /*training=*/true);
  Matrix policy_q = critic_.Forward(CriticInput(states, policy_actions),
                                    /*training=*/false);
  Matrix dq(batch, 1, -1.0 / static_cast<double>(batch));
  Matrix grad_input = critic_.Backward(dq, /*param_grads=*/false);
  Matrix grad_states, grad_actions;
  grad_input.SplitCols(options_.state_dim, &grad_states, &grad_actions);
  actor_.Backward(grad_actions);
  actor_opt_->ClipGradNorm(options_.grad_clip);
  actor_opt_->Step();

  // ---- Target networks ---------------------------------------------------
  actor_target_.SoftUpdateFrom(actor_, options_.tau);
  critic_target_.SoftUpdateFrom(critic_, options_.tau);

  stats.critic_loss = loss;
  stats.actor_objective = policy_q.MeanRows().at(0, 0);
  double td_abs = 0.0;
  for (double e : td_errors) td_abs += std::fabs(e);
  stats.mean_td_error = td_abs / static_cast<double>(batch);
  return stats;
}

void DdpgAgent::DecayNoise() {
  if (noise_.sigma() > options_.min_noise_sigma) {
    noise_.Decay(options_.noise_decay);
  }
}

void DdpgAgent::ResetNoise() { noise_.Reset(); }

double DdpgAgent::EstimateQ(const std::vector<double>& state,
                            const std::vector<double>& action) {
  Matrix s = Matrix::RowVector(state);
  Matrix a = Matrix::RowVector(action);
  Matrix q = critic_.Forward(CriticInput(s, a), /*training=*/false);
  return q.at(0, 0);
}

void DdpgAgent::AppendChunks(persist::ChunkWriter& writer,
                             const std::string& prefix) const {
  auto net_chunk = [&](const std::string& name, const nn::Sequential& net) {
    persist::Encoder enc;
    net.SaveBinary(enc);
    writer.Add(prefix + name, enc.Release());
  };
  {
    persist::Encoder enc;
    SaveDdpgOptionsBinary(enc, options_);
    writer.Add(prefix + "options", enc.Release());
  }
  {
    persist::Encoder enc;
    enc.WriteString(rng_.SerializeState());
    writer.Add(prefix + "rng", enc.Release());
  }
  net_chunk("actor", actor_);
  net_chunk("critic", critic_);
  net_chunk("actor_target", actor_target_);
  net_chunk("critic_target", critic_target_);
  {
    persist::Encoder enc;
    actor_opt_->SaveBinary(enc);
    writer.Add(prefix + "opt/actor", enc.Release());
  }
  {
    persist::Encoder enc;
    critic_opt_->SaveBinary(enc);
    writer.Add(prefix + "opt/critic", enc.Release());
  }
  {
    persist::Encoder enc;
    replay_->SaveBinary(enc);
    writer.Add(prefix + "replay", enc.Release());
  }
  {
    persist::Encoder enc;
    noise_.SaveBinary(enc);
    writer.Add(prefix + "noise", enc.Release());
  }
}

util::Status DdpgAgent::RestoreFromChunks(const persist::ChunkFile& file,
                                          const std::string& prefix) {
  DdpgOptions saved;
  CDBTUNE_RETURN_IF_ERROR(
      file.Decode(prefix + "options", [&](persist::Decoder& dec) {
        return LoadDdpgOptionsBinary(dec, &saved);
      }));
  // `seed` only names the initial rng/noise streams; the live stream state is
  // restored from dedicated chunks below, so a shared checkpoint may be loaded
  // into agents constructed with any seed. Structural fields stay fatal.
  DdpgOptions expect = options_;
  expect.seed = saved.seed;
  std::string diff = DdpgOptionsDiff(saved, expect);
  if (!diff.empty()) {
    return util::Status::DataLoss(
        "checkpoint agent options differ from this agent's (" + diff +
        "); rebuild the agent from the checkpoint's options chunk first");
  }
  options_.seed = saved.seed;
  CDBTUNE_RETURN_IF_ERROR(
      file.Decode(prefix + "rng", [&](persist::Decoder& dec) {
        std::string state;
        if (!dec.ReadString(&state)) return dec.status();
        if (!rng_.RestoreState(state)) {
          return util::Status::DataLoss("agent rng state malformed");
        }
        return util::Status::Ok();
      }));
  auto net_restore = [&](const std::string& name, nn::Sequential& net) {
    return file.Decode(prefix + name, [&](persist::Decoder& dec) {
      return net.LoadBinary(dec);
    });
  };
  CDBTUNE_RETURN_IF_ERROR(net_restore("actor", actor_));
  CDBTUNE_RETURN_IF_ERROR(net_restore("critic", critic_));
  CDBTUNE_RETURN_IF_ERROR(net_restore("actor_target", actor_target_));
  CDBTUNE_RETURN_IF_ERROR(net_restore("critic_target", critic_target_));
  CDBTUNE_RETURN_IF_ERROR(
      file.Decode(prefix + "opt/actor", [&](persist::Decoder& dec) {
        return actor_opt_->LoadBinary(dec);
      }));
  CDBTUNE_RETURN_IF_ERROR(
      file.Decode(prefix + "opt/critic", [&](persist::Decoder& dec) {
        return critic_opt_->LoadBinary(dec);
      }));
  CDBTUNE_RETURN_IF_ERROR(
      file.Decode(prefix + "replay", [&](persist::Decoder& dec) {
        return replay_->LoadBinary(dec);
      }));
  return file.Decode(prefix + "noise", [&](persist::Decoder& dec) {
    return noise_.LoadBinary(dec);
  });
}

util::Status DdpgAgent::Save(const std::string& prefix) const {
  persist::ChunkWriter writer;
  AppendChunks(writer);
  auto bytes = writer.Finish();
  CDBTUNE_RETURN_IF_ERROR(bytes.status());
  return persist::AtomicWriteFile(prefix + ".agent", *bytes);
}

util::Status DdpgAgent::Load(const std::string& prefix) {
  auto bytes = persist::ReadFile(prefix + ".agent");
  CDBTUNE_RETURN_IF_ERROR(bytes.status());
  auto file = persist::ChunkFile::Parse(*std::move(bytes));
  CDBTUNE_RETURN_IF_ERROR(file.status());
  // Validate the whole checkpoint against a scratch agent first so a corrupt
  // file cannot leave *this holding a mix of old and new state.
  auto scratch = std::make_unique<DdpgAgent>(options_);
  CDBTUNE_RETURN_IF_ERROR(scratch->RestoreFromChunks(*file));
  return RestoreFromChunks(*file);
}

void DdpgAgent::CloneWeightsFrom(DdpgAgent& other) {
  // Full-state copy: BatchNorm running statistics must come along or the
  // clone's eval-mode policy would differ from the source's.
  actor_.CopyStateFrom(other.actor_);
  critic_.CopyStateFrom(other.critic_);
  actor_target_.CopyStateFrom(other.actor_target_);
  critic_target_.CopyStateFrom(other.critic_target_);
}

size_t DdpgAgent::NumParameters() {
  return actor_.NumParameters() + critic_.NumParameters();
}

}  // namespace cdbtune::rl
