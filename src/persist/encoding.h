#ifndef CDBTUNE_PERSIST_ENCODING_H_
#define CDBTUNE_PERSIST_ENCODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace cdbtune::persist {

/// Appends fixed-width little-endian primitives to a byte string. Doubles
/// are bit-cast through uint64_t, so every finite, infinite and NaN value
/// round-trips bitwise — the property the resume-equivalence contract
/// (DESIGN.md §9) is built on; no text formatting is involved.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::string* out) : external_(out) {}

  void WriteU8(uint8_t v) { Append(&v, 1); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);

  /// Length-prefixed (u64) byte string.
  void WriteString(std::string_view s);
  /// Length-prefixed (u64) vector of bit-cast doubles.
  void WriteDoubleVec(const std::vector<double>& v);

  void AppendRaw(const void* data, size_t size) { Append(data, size); }

  const std::string& bytes() const { return buffer(); }
  std::string Release() { return std::move(buffer()); }

 private:
  void Append(const void* data, size_t size) {
    buffer().append(static_cast<const char*>(data), size);
  }
  std::string& buffer() { return external_ ? *external_ : owned_; }
  const std::string& buffer() const { return external_ ? *external_ : owned_; }

  std::string owned_;
  std::string* external_ = nullptr;  // Not owned.
};

/// Reads back what Encoder wrote. Errors are sticky: the first short read or
/// malformed length poisons the decoder, every later Read* returns false and
/// leaves its output untouched, and `status()` reports the earliest failure
/// with its byte offset. Callers can therefore chain reads and check once.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v);
  bool ReadBool(bool* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadDouble(double* v);
  bool ReadString(std::string* s);
  bool ReadDoubleVec(std::vector<double>* v);

  /// True when every byte has been consumed and no error occurred.
  bool Done() const { return ok_ && pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }
  bool ok() const { return ok_; }

  /// kOk while no read failed; kDataLoss (with byte offset) afterwards.
  [[nodiscard]] util::Status status() const;

  /// Requires all bytes consumed; trailing garbage is corruption too.
  [[nodiscard]] util::Status Finish() const;

 private:
  bool Take(void* out, size_t size);
  bool Fail();

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
  size_t error_pos_ = 0;
};

}  // namespace cdbtune::persist

#endif  // CDBTUNE_PERSIST_ENCODING_H_
