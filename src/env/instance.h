#ifndef CDBTUNE_ENV_INSTANCE_H_
#define CDBTUNE_ENV_INSTANCE_H_

#include <string>
#include <vector>

namespace cdbtune::env {

/// Storage device class; drives the I/O latency constants of the
/// performance model. Section 5.3 mentions SSD and NVM experiments.
enum class DiskType { kHdd, kSsd, kNvm };

const char* DiskTypeName(DiskType type);

/// Hardware shape of one cloud database instance (paper Table 1). The
/// paper's instances differ mainly in memory size and disk capacity.
struct HardwareSpec {
  std::string name;
  double ram_gb = 8.0;
  double disk_gb = 100.0;
  int cpu_cores = 12;  // The evaluation host: 12-core 4 GHz.
  DiskType disk_type = DiskType::kSsd;

  double ram_bytes() const { return ram_gb * 1024.0 * 1024.0 * 1024.0; }
  double disk_bytes() const { return disk_gb * 1024.0 * 1024.0 * 1024.0; }
};

/// Table 1 presets.
HardwareSpec CdbA();  // 8 GB RAM, 100 GB disk
HardwareSpec CdbB();  // 12 GB RAM, 100 GB disk
HardwareSpec CdbC();  // 12 GB RAM, 200 GB disk
HardwareSpec CdbD();  // 16 GB RAM, 200 GB disk
HardwareSpec CdbE();  // 32 GB RAM, 300 GB disk

/// CDB-X1: (4, 12, 32, 64, 128) GB RAM, 100 GB disk — Figure 10 sweep.
std::vector<HardwareSpec> CdbX1Variants();

/// CDB-X2: 12 GB RAM, (32, 64, 100, 256, 512) GB disk — Figure 11 sweep.
std::vector<HardwareSpec> CdbX2Variants();

/// Custom instance, for adaptability sweeps.
HardwareSpec MakeInstance(std::string name, double ram_gb, double disk_gb,
                          DiskType disk = DiskType::kSsd, int cores = 12);

}  // namespace cdbtune::env

#endif  // CDBTUNE_ENV_INSTANCE_H_
