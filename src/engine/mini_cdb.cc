#include "engine/mini_cdb.h"

#include <algorithm>
#include <cmath>

#include "env/metrics.h"
#include "util/check.h"

namespace cdbtune::engine {

namespace mi = env::metric_index;

namespace {

double ReadKnob(const knobs::KnobRegistry& reg, const knobs::Config& c,
                const char* name, double fallback) {
  auto idx = reg.FindIndex(name);
  return idx.has_value() ? c[*idx] : fallback;
}

/// CPU charged per operation kind (parse/plan/execute, network handling).
constexpr VirtualNanos kPointOpCpuNs = 18'000;
constexpr VirtualNanos kWriteOpCpuNs = 24'000;
constexpr VirtualNanos kScanPerRowCpuNs = 500;

}  // namespace

MiniCdb::MiniCdb(env::HardwareSpec hardware, MiniCdbOptions options)
    : hardware_(std::move(hardware)),
      options_(options),
      registry_(knobs::BuildMysqlCatalog()),
      config_(registry_.DefaultConfig()),
      rng_(options.seed),
      next_insert_key_(options.table_rows) {
  const double table_bytes =
      static_cast<double>(options_.table_rows) * kRecordSize * 1.15;
  scale_ = table_bytes / (options_.reference_data_gb * 1024.0 * 1024.0 * 1024.0);
  CDBTUNE_CHECK_OK(Rebuild());
  CDBTUNE_CHECK_OK(BulkLoad());
}

util::Status MiniCdb::Rebuild() {
  // Tear down in dependency order; the WAL releases its disk reservation.
  btree_.reset();
  wal_.reset();
  pool_.reset();
  disk_.reset();
  clock_.Reset();

  disk_ = std::make_unique<DiskManager>(
      &clock_, hardware_.disk_type,
      static_cast<uint64_t>(hardware_.disk_bytes() * scale_));

  // Buffer pool: scaled innodb_buffer_pool_size, with the same
  // physical-memory crash rule as the cloud instance.
  double bp_bytes = ReadKnob(registry_, config_, "innodb_buffer_pool_size",
                             128.0 * 1024 * 1024);
  double log_buffer =
      ReadKnob(registry_, config_, "innodb_log_buffer_size", 16.0 * 1024 * 1024);
  if (bp_bytes + log_buffer > 0.98 * hardware_.ram_bytes()) {
    ++crash_count_;
    return util::Status::Crashed(
        "buffer allocations exceed physical memory; instance OOM-killed");
  }
  size_t frames = std::max<size_t>(
      16, static_cast<size_t>(bp_bytes * scale_ / kPageSize));
  pool_ = std::make_unique<BufferPool>(disk_.get(), &clock_, frames);

  WalOptions wal_options;
  wal_options.file_size_bytes = static_cast<uint64_t>(std::max(
      64.0 * 1024,
      ReadKnob(registry_, config_, "innodb_log_file_size", 48.0 * 1024 * 1024) *
          scale_));
  wal_options.files_in_group = static_cast<uint32_t>(
      ReadKnob(registry_, config_, "innodb_log_files_in_group", 2));
  wal_options.log_buffer_bytes = static_cast<uint64_t>(
      std::max(16.0 * 1024, log_buffer * scale_));
  double policy =
      ReadKnob(registry_, config_, "innodb_flush_log_at_trx_commit", 1);
  wal_options.flush_policy = policy == 1.0   ? WalFlushPolicy::kFsyncPerCommit
                             : policy == 2.0 ? WalFlushPolicy::kWritePerCommit
                                             : WalFlushPolicy::kLazy;
  auto wal = Wal::Create(disk_.get(), &clock_, wal_options);
  if (!wal.ok()) {
    ++crash_count_;
    return util::Status::Crashed(
        "redo log allocation exceeds disk budget: " + wal.status().message());
  }
  wal_ = std::move(wal.value());

  auto tree = BTree::Create(pool_.get());
  CDBTUNE_RETURN_IF_ERROR(tree.status());
  btree_ = std::move(tree.value());
  return util::Status::Ok();
}

util::Status MiniCdb::BulkLoad() {
  char payload[kRecordPayload];
  std::memset(payload, 0xAB, sizeof(payload));
  for (uint64_t key = 0; key < options_.table_rows; ++key) {
    CDBTUNE_RETURN_IF_ERROR(btree_->Insert(key, payload));
  }
  next_insert_key_ = options_.table_rows;
  return TakeCheckpoint();
}

util::Status MiniCdb::TakeCheckpoint() {
  // Checkpoints are the engine's quiescent points: in debug builds, walk
  // the tree and the WAL bookkeeping before trusting the image.
  CDBTUNE_DCHECK_OK(btree_->Validate());
  CDBTUNE_RETURN_IF_ERROR(pool_->FlushAll());
  wal_->CheckpointComplete();
  disk_->MarkCheckpoint();
  checkpoint_meta_.root = btree_->root();
  checkpoint_meta_.height = btree_->height();
  checkpoint_meta_.entries = btree_->num_entries();
  checkpoint_meta_.next_key = next_insert_key_;
  return util::Status::Ok();
}

util::Status MiniCdb::SimulateCrashAndRecover(size_t* replayed_out) {
  // What the journal can give back: records fsynced before the crash.
  std::vector<RedoRecord> records = wal_->RecoverableRecords();

  // Crash: volatile state evaporates; the data files present the last
  // atomic checkpoint image.
  pool_->DropAll();
  disk_->RevertToCheckpoint();
  btree_ = BTree::Attach(pool_.get(), checkpoint_meta_.root,
                         checkpoint_meta_.height, checkpoint_meta_.entries);
  next_insert_key_ = checkpoint_meta_.next_key;
  ++crash_count_;

  // Recovery: replay the durable journal in LSN order.
  size_t replayed = 0;
  for (const RedoRecord& record : records) {
    if (record.is_insert) {
      CDBTUNE_RETURN_IF_ERROR(btree_->Insert(record.key, record.payload));
      next_insert_key_ = std::max(next_insert_key_, record.key + 1);
    } else {
      auto updated = btree_->Update(record.key, record.payload);
      CDBTUNE_RETURN_IF_ERROR(updated.status());
    }
    ++replayed;
  }
  if (replayed_out != nullptr) *replayed_out = replayed;
  // Recovery ends with a fresh checkpoint, as real engines do.
  return TakeCheckpoint();
}

util::Status MiniCdb::ApplyConfig(const knobs::Config& config) {
  if (config.size() != registry_.size()) {
    return util::Status::InvalidArgument("config has wrong knob count");
  }
  knobs::Config previous = config_;
  config_ = registry_.Sanitize(config);
  util::Status status = Rebuild();
  if (!status.ok()) {
    // Crash: the instance restarts on the previous healthy configuration.
    config_ = std::move(previous);
    counters_ = env::MetricsSnapshot{};
    util::Status recover = Rebuild();
    CDBTUNE_CHECK(recover.ok()) << "recovery rebuild failed: "
                                << recover.ToString();
    CDBTUNE_CHECK_OK(BulkLoad());
    return status;
  }
  return BulkLoad();
}

void MiniCdb::Reset() {
  config_ = registry_.DefaultConfig();
  counters_ = env::MetricsSnapshot{};
  crash_count_ = 0;
  CDBTUNE_CHECK_OK(Rebuild());
  CDBTUNE_CHECK_OK(BulkLoad());
}

util::StatusOr<env::StressResult> MiniCdb::RunStress(
    const workload::WorkloadSpec& spec, double duration_s) {
  if (duration_s <= 0.0) {
    return util::Status::InvalidArgument("non-positive stress duration");
  }
  env::StressResult result;
  result.before = counters_;
  result.duration_s = duration_s;

  // Stress knobs -> engine behavior for this run.
  const double io_capacity =
      ReadKnob(registry_, config_, "innodb_io_capacity", 200.0);
  const double max_dirty_pct =
      ReadKnob(registry_, config_, "innodb_max_dirty_pages_pct", 75.0);
  const double max_conn = ReadKnob(registry_, config_, "max_connections", 151);
  const double threads = static_cast<double>(spec.client_threads);
  const double admitted = std::min(threads, std::max(1.0, max_conn));

  workload::OperationGenerator generator(
      spec, next_insert_key_, util::Rng(rng_.engine()()));

  const double virtual_budget_s = duration_s / options_.time_scale;
  const VirtualNanos start_ns = clock_.now();
  const VirtualNanos budget_ns =
      static_cast<VirtualNanos>(virtual_budget_s * 1e9);
  VirtualNanos next_cleaner_ns = start_ns;
  const VirtualNanos cleaner_period_ns = 10'000'000;  // 10 ms rounds.

  uint64_t txns = 0, reads = 0, writes = 0, scans = 0, commits = 0;
  util::PercentileTracker txn_latency;
  VirtualNanos txn_start = clock_.now();
  char payload[kRecordPayload];
  std::memset(payload, 0xCD, sizeof(payload));

  while (clock_.now() - start_ns < budget_ns) {
    workload::Operation op = generator.Next();
    switch (op.kind) {
      case workload::Operation::Kind::kPointRead: {
        clock_.Advance(kPointOpCpuNs);
        auto found = btree_->Get(op.key % options_.table_rows, nullptr);
        CDBTUNE_RETURN_IF_ERROR(found.status());
        ++reads;
        break;
      }
      case workload::Operation::Kind::kRangeScan: {
        clock_.Advance(kPointOpCpuNs +
                       static_cast<VirtualNanos>(op.scan_rows) *
                           kScanPerRowCpuNs);
        auto visited =
            btree_->Scan(op.key % options_.table_rows, op.scan_rows);
        CDBTUNE_RETURN_IF_ERROR(visited.status());
        ++scans;
        reads += visited.value();
        break;
      }
      case workload::Operation::Kind::kUpdate: {
        clock_.Advance(kWriteOpCpuNs);
        uint64_t key = op.key % options_.table_rows;
        auto ok = btree_->Update(key, payload);
        CDBTUNE_RETURN_IF_ERROR(ok.status());
        wal_->AppendRecord(key, /*is_insert=*/false, payload, 320);
        ++writes;
        break;
      }
      case workload::Operation::Kind::kInsert: {
        clock_.Advance(kWriteOpCpuNs);
        CDBTUNE_RETURN_IF_ERROR(btree_->Insert(next_insert_key_, payload));
        wal_->AppendRecord(next_insert_key_, /*is_insert=*/true, payload, 480);
        ++next_insert_key_;
        ++writes;
        break;
      }
    }

    if (op.commit_after) {
      // Group commit: charge this stream a 1/group share of the fsync work
      // by only issuing the device flush every `group` commits (the WAL's
      // own group counter handles that).
      wal_->Commit();
      ++commits;
      ++txns;
      txn_latency.Add(static_cast<double>(clock_.now() - txn_start) * 1e-6);
      txn_start = clock_.now();
    }

    // Background cleaners: every 10 virtual ms, flush according to
    // io_capacity and the dirty-page high-water mark.
    if (clock_.now() >= next_cleaner_ns) {
      next_cleaner_ns = clock_.now() + cleaner_period_ns;
      double dirty_fraction =
          static_cast<double>(pool_->dirty_pages()) /
          std::max<size_t>(1, pool_->num_frames());
      if (dirty_fraction * 100.0 > max_dirty_pct * 0.5) {
        size_t budget = static_cast<size_t>(io_capacity * 0.01) + 1;
        pool_->FlushSome(budget);
      }
    }

    // Checkpoint stall: redo filled up; everything waits for a full flush
    // and a fresh crash-consistent image.
    if (wal_->NeedsCheckpoint()) {
      CDBTUNE_RETURN_IF_ERROR(TakeCheckpoint());
    }
  }

  const double elapsed_s =
      static_cast<double>(clock_.now() - start_ns) * 1e-9;
  // Single-stream execution measured; offered concurrency overlaps I/O
  // waits across threads. Effective parallelism is bounded by cores for
  // CPU work and by admitted connections overall.
  const double parallelism =
      std::min(admitted, static_cast<double>(hardware_.cpu_cores) * 4.0);
  const double tps =
      std::max(1e-3, static_cast<double>(txns) / elapsed_s * parallelism /
                         options_.time_scale);

  result.external.throughput_tps = tps;
  // All offered clients queue on the system (Little's law view).
  result.external.latency_mean_ms = threads * 1000.0 / tps * 0.8;
  const double single_p99 = txn_latency.Percentile(0.99);
  const double single_mean = std::max(1e-6, txn_latency.mean());
  result.external.latency_p99_ms =
      result.external.latency_mean_ms * (single_p99 / single_mean) * 0.5 +
      result.external.latency_mean_ms;

  UpdateCounters(spec, txns, reads, writes, scans, duration_s, admitted);
  result.after = counters_;
  return result;
}

void MiniCdb::UpdateCounters(const workload::WorkloadSpec& spec, uint64_t txns,
                             uint64_t reads, uint64_t writes, uint64_t scans,
                             double duration_s, double admitted) {
  // Gauges.
  counters_[mi::kBufferPoolPagesTotal] =
      static_cast<double>(pool_->num_frames());
  counters_[mi::kBufferPoolPagesData] =
      static_cast<double>(pool_->pages_cached());
  counters_[mi::kBufferPoolPagesDirty] =
      static_cast<double>(pool_->dirty_pages());
  counters_[mi::kBufferPoolPagesMisc] = 0.0;
  counters_[mi::kBufferPoolPagesFree] = static_cast<double>(
      pool_->num_frames() - std::min(pool_->num_frames(), pool_->pages_cached()));
  counters_[mi::kPageSize] = static_cast<double>(kPageSize);
  counters_[mi::kThreadsRunning] = admitted;
  counters_[mi::kThreadsConnected] = static_cast<double>(spec.client_threads);
  counters_[mi::kThreadsCached] = admitted * 0.1;
  counters_[mi::kOpenTables] = 1.0;
  counters_[mi::kOpenFiles] = 4.0;
  counters_[mi::kRowLockCurrentWaits] = 0.0;
  counters_[mi::kNumOpenFiles] = 4.0;
  counters_[mi::kQcacheFreeMemory] = 0.0;

  // Cumulative counters scale by the virtual-time compression so rates per
  // stress second look like the full-size system's.
  const double scale_up = options_.time_scale;
  auto add = [&](size_t idx, double delta) {
    counters_[idx] += delta * scale_up;
  };
  add(mi::kBpReadRequests, static_cast<double>(pool_->hits() + pool_->misses()));
  add(mi::kBpReads, static_cast<double>(pool_->misses()));
  add(mi::kBpWriteRequests, static_cast<double>(writes));
  add(mi::kBpPagesFlushed, static_cast<double>(pool_->pages_flushed()));
  add(mi::kDataReads, static_cast<double>(disk_->reads_issued()));
  add(mi::kDataWrites, static_cast<double>(disk_->writes_issued()));
  add(mi::kDataRead, static_cast<double>(disk_->reads_issued()) * kPageSize);
  add(mi::kDataWritten, static_cast<double>(disk_->writes_issued()) * kPageSize);
  add(mi::kDataFsyncs, static_cast<double>(disk_->fsyncs_issued()));
  add(mi::kLogWrites, static_cast<double>(wal_->log_writes()));
  add(mi::kLogWriteRequests, static_cast<double>(writes));
  add(mi::kLogWaits, static_cast<double>(wal_->log_waits()));
  add(mi::kOsLogFsyncs, static_cast<double>(wal_->fsyncs()));
  add(mi::kOsLogWritten, static_cast<double>(wal_->lsn()) * 360.0);
  add(mi::kPagesRead, static_cast<double>(disk_->reads_issued()));
  add(mi::kPagesWritten, static_cast<double>(disk_->writes_issued()));
  add(mi::kRowsRead, static_cast<double>(reads));
  add(mi::kRowsInserted, static_cast<double>(writes) * spec.insert_fraction);
  add(mi::kRowsUpdated,
      static_cast<double>(writes) * (1.0 - spec.insert_fraction));
  add(mi::kComSelect, static_cast<double>(reads - scans));
  add(mi::kComInsert, static_cast<double>(writes) * spec.insert_fraction);
  add(mi::kComUpdate,
      static_cast<double>(writes) * (1.0 - spec.insert_fraction));
  add(mi::kComCommit, static_cast<double>(txns));
  add(mi::kQuestions, static_cast<double>(reads + writes));
  add(mi::kQueries, static_cast<double>(reads + writes));
  add(mi::kBytesReceived, static_cast<double>(reads + writes) * 120.0);
  add(mi::kBytesSent, static_cast<double>(reads) * 220.0);
  add(mi::kSelectScan, static_cast<double>(scans));
  add(mi::kSelectRange, static_cast<double>(scans) * 0.7);
  (void)duration_s;
}

}  // namespace cdbtune::engine
