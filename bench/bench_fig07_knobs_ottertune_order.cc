// Reproduces Figure 7: the same knob-count sweep as Figure 6 but with the
// knobs sorted by OtterTune's Lasso-based importance ranking instead of the
// DBA's. The ranking itself is produced by our OtterTune implementation from
// observation data it collects, exactly as its pipeline prescribes.
//
// Expected shape (paper): same qualitative picture as Figure 6 — CDBTune
// dominates at every count, while DBA/OtterTune flatten or dip as the knob
// space grows — demonstrating the conclusion is not an artifact of whose
// ranking orders the sweep.
#include <iostream>

#include "bench_common.h"
#include "baselines/ottertune.h"

int main() {
  using namespace cdbtune;
  bench::Budgets budgets;
  budgets.cdbtune_offline_steps = 600;
  budgets.seed = 67;

  // Stage 1: OtterTune builds its knob ranking from sampled observations.
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbB(), budgets.seed);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  baselines::OtterTune ranker(db.get(), space, {});
  ranker.CollectSamples(workload::Tpcc(), 120);
  std::vector<size_t> ranked_positions = ranker.RankKnobs();
  // Positions index the active knob list; convert to registry indices.
  std::vector<size_t> order;
  order.reserve(ranked_positions.size());
  for (size_t pos : ranked_positions) {
    order.push_back(space.active_indices()[pos]);
  }
  std::cout << "OtterTune's Lasso ranking computed from "
            << ranker.repository_size() << " observations; top knobs:";
  for (size_t i = 0; i < 5; ++i) {
    std::cout << " " << db->registry().def(order[i]).name;
  }
  std::cout << "\n";

  bench::RunKnobCountSweep(
      "Figure 7: TPC-C on CDB-B, knobs sorted by OtterTune ranking",
      workload::Tpcc(), env::CdbB(), order, {20, 40, 80, 120, 160, 200, 266},
      budgets);
  return 0;
}
