# Empty dependencies file for cdbtune_engine.
# This may be replaced when dependencies are built.
