#ifndef CDBTUNE_UTIL_MUTEX_H_
#define CDBTUNE_UTIL_MUTEX_H_

// The one sanctioned home of raw standard-library synchronization: every
// other file in src/ must use util::Mutex / util::MutexLock / util::CondVar
// (the lint `raw-mutex` rule enforces this), so the thread-safety
// annotations and the lock-rank detector see every lock in the process.

#include <condition_variable>
#include <mutex>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace cdbtune::util {

/// Lock-rank registry (DESIGN.md "Lock discipline"). Locks must be acquired
/// in strictly ascending rank order; two mutexes of equal rank may never be
/// held together. In CDBTUNE_DCHECK builds (Debug, or -DCDBTUNE_DCHECK=ON —
/// the whole sanitizer matrix) every acquire is checked against the calling
/// thread's held-lock list and an out-of-order or re-entrant acquire aborts
/// with both the offending mutex and the full held list; release builds
/// compile the checks out entirely (Lock() is exactly std::mutex::lock()).
namespace lock_rank {
/// Socket front end (SocketServer::mu_): connection queue + lifecycle. The
/// outermost lock — socket workers call into the tuning server below it.
inline constexpr int kIoFrontEnd = 100;
/// TCP front end (net::TcpServer::mu_): dispatch work queue, lifecycle
/// flags, transport telemetry. Like kIoFrontEnd it sits above the server
/// locks (workers pop a request, release, then call into the tuning
/// server); the two front-end locks are never held together.
inline constexpr int kNetFrontEnd = 110;
/// net::EventLoop::tasks_mu_: the cross-thread task queue. Held only for
/// the push/swap — queued tasks always run lock-free on the loop thread —
/// but ranked below the server locks because workers post completions
/// after (never while) holding them.
inline constexpr int kNetLoopTasks = 120;
/// TuningServer::mu_: session registry, shard free list, round/exclusivity
/// state.
inline constexpr int kServerSessions = 200;
/// TuningServer::agent_mu_: the shared model. Nested inside mu_ on the
/// restore-commit path, never the other way around.
inline constexpr int kServerAgent = 300;
/// ThreadPool::mu_: the compute pool's task queue. Above the server locks
/// because training holds agent_mu_ across ParallelFor/RunConcurrent.
inline constexpr int kThreadPool = 800;
/// BlockingCounter::mu_: fork/join countdown, waited on after submitting.
inline constexpr int kBlockingCounter = 810;
/// Default for utility mutexes with no declared ordering: innermost except
/// for the log sink, so an unranked lock can be taken while holding any
/// ranked one but never alongside another unranked lock.
inline constexpr int kLeaf = 900;
/// The logging sink: the absolute innermost, so logging is legal while
/// holding any other lock in the repo.
inline constexpr int kLogSink = 1000;
}  // namespace lock_rank

/// Annotated std::mutex wrapper with a debug-mode lock-rank deadlock
/// detector. Non-recursive; not copyable or movable (guarded members name
/// their mutex in annotations, so its address is part of the protocol).
class CDBTUNE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = lock_rank::kLeaf, const char* name = "Mutex")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CDBTUNE_ACQUIRE() {
#if CDBTUNE_DCHECK_ENABLED
    DebugCheckAcquire();
#endif
    mu_.lock();
#if CDBTUNE_DCHECK_ENABLED
    DebugNoteAcquired();
#endif
  }

  void Unlock() CDBTUNE_RELEASE() {
#if CDBTUNE_DCHECK_ENABLED
    DebugNoteReleased();
#endif
    mu_.unlock();
  }

  /// Non-blocking acquire. A successful try must still respect the rank
  /// order — a trylock cannot deadlock by itself, but an out-of-order one
  /// means the caller's mental model of the hierarchy is wrong.
  bool TryLock() CDBTUNE_TRY_ACQUIRE(true) {
#if CDBTUNE_DCHECK_ENABLED
    DebugCheckAcquire();
#endif
    if (!mu_.try_lock()) return false;
#if CDBTUNE_DCHECK_ENABLED
    DebugNoteAcquired();
#endif
    return true;
  }

  /// Dies in debug builds unless the calling thread holds this mutex; tells
  /// the static analysis to treat it as held from here on.
  void AssertHeld() const CDBTUNE_ASSERT_CAPABILITY(this) {
#if CDBTUNE_DCHECK_ENABLED
    DebugAssertHeld();
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

#if CDBTUNE_DCHECK_ENABLED
  void DebugCheckAcquire() const;
  void DebugNoteAcquired() const;
  void DebugNoteReleased() const;
  void DebugAssertHeld() const;
  void DebugCheckWaitPrecondition() const;
#endif

  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

/// RAII lock for util::Mutex — the only way the repo takes a lock outside
/// explicit Lock/Unlock pairs in the wait loops.
class CDBTUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CDBTUNE_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() CDBTUNE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to util::Mutex. There is deliberately no
/// predicate overload: a predicate lambda is analyzed as a separate function
/// by the thread-safety pass and its guarded reads would be invisible to the
/// REQUIRES contract. Write the loop out instead, so every guarded read sits
/// in a scope the analysis can see:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Debug builds die if the caller does not hold `mu` (the
  /// classic wait-without-lock bug) and rank-check the reacquisition
  /// against locks still held across the wait.
  void Wait(Mutex& mu) CDBTUNE_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace cdbtune::util

#endif  // CDBTUNE_UTIL_MUTEX_H_
