# Empty dependencies file for cdbtune_workload.
# This may be replaced when dependencies are built.
