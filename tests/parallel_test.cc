// Tests for the parallel compute substrate: ThreadPool / ComputeContext
// primitives, and the end-to-end determinism contract — a DDPG training run
// produces bitwise-identical results at CDBTUNE_THREADS=1 and
// CDBTUNE_THREADS=8.
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "rl/ddpg.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace cdbtune {
namespace {

/// Restores the global thread count when a test exits.
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n)
      : old_(util::ComputeContext::Get().threads()) {
    util::ComputeContext::Get().SetThreads(n);
  }
  ~ScopedThreads() { util::ComputeContext::Get().SetThreads(old_); }

 private:
  size_t old_;
};

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkerFlagVisibleInsideTasks) {
  EXPECT_FALSE(util::ThreadPool::InWorker());
  util::ThreadPool pool(1);
  std::atomic<bool> seen{false};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    seen = util::ThreadPool::InWorker();
    done = true;
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_TRUE(seen.load());
}

TEST(ComputeContextTest, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    ScopedThreads scoped(threads);
    std::vector<std::atomic<int>> hits(1000);
    util::ComputeContext::Get().ParallelFor(
        0, hits.size(), /*grain=*/16, [&](size_t lo, size_t hi) {
          ASSERT_LE(lo, hi);
          for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ComputeContextTest, ParallelForRespectsGrain) {
  ScopedThreads scoped(8);
  // range == grain: must run as one inline chunk.
  size_t calls = 0;
  util::ComputeContext::Get().ParallelFor(5, 13, 8, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 5u);
    EXPECT_EQ(hi, 13u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ComputeContextTest, ParallelForEmptyRangeIsNoop) {
  size_t calls = 0;
  util::ComputeContext::Get().ParallelFor(
      3, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(ComputeContextTest, NestedParallelForRunsInline) {
  ScopedThreads scoped(4);
  std::atomic<int> inner_chunks{0};
  util::ComputeContext::Get().RunConcurrent(
      {[&] {
         // Inside a RunConcurrent task (calling thread or pool worker), a
         // nested ParallelFor from a worker must degrade to one inline call
         // rather than re-enter the pool.
         util::ComputeContext::Get().ParallelFor(
             0, 100, 1, [&](size_t, size_t) { inner_chunks.fetch_add(1); });
       },
       [&] {
         util::ComputeContext::Get().ParallelFor(
             0, 100, 1, [&](size_t, size_t) { inner_chunks.fetch_add(1); });
       }});
  // Task 0 runs on the calling thread (may split); task 1 runs on a worker
  // (single inline chunk). Either way every index is covered; at minimum 2
  // chunks total, and the worker-side call contributes exactly one.
  EXPECT_GE(inner_chunks.load(), 2);
}

TEST(ComputeContextTest, RunConcurrentRunsAllTasks) {
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ScopedThreads scoped(threads);
    std::vector<std::atomic<int>> ran(10);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < ran.size(); ++i) {
      tasks.push_back([&ran, i] { ran[i].fetch_add(1); });
    }
    util::ComputeContext::Get().RunConcurrent(std::move(tasks));
    for (size_t i = 0; i < ran.size(); ++i) EXPECT_EQ(ran[i].load(), 1);
  }
}

// --- End-to-end determinism -----------------------------------------------

rl::DdpgOptions SmallDdpg() {
  rl::DdpgOptions o;
  o.state_dim = 63;
  o.action_dim = 40;
  o.actor_hidden = {64, 64};
  o.critic_embed = 64;
  o.critic_hidden = {64, 32};
  o.batch_size = 16;
  o.seed = 21;
  return o;
}

rl::Transition MakeTransition(util::Rng& rng, const rl::DdpgOptions& o) {
  rl::Transition t;
  t.state.resize(o.state_dim);
  t.action.resize(o.action_dim);
  t.next_state.resize(o.state_dim);
  for (double& v : t.state) v = rng.Gaussian();
  for (double& v : t.action) v = rng.Uniform();
  for (double& v : t.next_state) v = rng.Gaussian();
  t.reward = rng.Gaussian();
  return t;
}

/// Runs a fixed training schedule and returns every observable output.
struct TrainTrace {
  std::vector<rl::TrainStats> stats;
  std::vector<double> final_action;
};

TrainTrace RunSchedule(size_t threads) {
  ScopedThreads scoped(threads);
  rl::DdpgOptions options = SmallDdpg();
  rl::DdpgAgent agent(options);
  util::Rng data_rng(99);
  for (int i = 0; i < 64; ++i) {
    agent.Observe(MakeTransition(data_rng, options));
  }
  TrainTrace trace;
  for (int step = 0; step < 6; ++step) {
    trace.stats.push_back(agent.TrainStep());
  }
  std::vector<double> probe(options.state_dim, 0.25);
  trace.final_action = agent.SelectAction(probe, /*explore=*/false);
  return trace;
}

TEST(ParallelDeterminismTest, TrainStepBitwiseIdenticalAcrossThreadCounts) {
  TrainTrace serial = RunSchedule(1);
  TrainTrace parallel = RunSchedule(8);

  ASSERT_EQ(serial.stats.size(), parallel.stats.size());
  for (size_t i = 0; i < serial.stats.size(); ++i) {
    // Bitwise equality: the parallel schedule must not change any
    // floating-point summation order.
    EXPECT_EQ(serial.stats[i].critic_loss, parallel.stats[i].critic_loss)
        << "step " << i;
    EXPECT_EQ(serial.stats[i].actor_objective,
              parallel.stats[i].actor_objective)
        << "step " << i;
    EXPECT_EQ(serial.stats[i].mean_td_error, parallel.stats[i].mean_td_error)
        << "step " << i;
  }
  ASSERT_EQ(serial.final_action.size(), parallel.final_action.size());
  for (size_t i = 0; i < serial.final_action.size(); ++i) {
    EXPECT_EQ(serial.final_action[i], parallel.final_action[i])
        << "action dim " << i;
  }
}

TEST(ParallelDeterminismTest, RepeatedRunsAtFixedThreadCountIdentical) {
  TrainTrace a = RunSchedule(8);
  TrainTrace b = RunSchedule(8);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].critic_loss, b.stats[i].critic_loss);
  }
  EXPECT_EQ(a.final_action, b.final_action);
}

}  // namespace
}  // namespace cdbtune
