#include "baselines/random_tuner.h"

#include "safety/apply.h"
#include "util/check.h"
#include "util/logging.h"

namespace cdbtune::baselines {

RandomTuner::RandomTuner(env::DbInterface* db, knobs::KnobSpace space,
                         uint64_t seed, double stress_duration_s)
    : db_(db),
      space_(std::move(space)),
      rng_(seed),
      stress_duration_s_(stress_duration_s) {
  CDBTUNE_CHECK(db_ != nullptr);
}

BaselineResult RandomTuner::Search(const workload::WorkloadSpec& spec,
                                   int budget) {
  BaselineResult out;
  const knobs::Config base = db_->current_config();
  auto baseline = db_->RunStress(spec, stress_duration_s_);
  if (!baseline.ok()) return out;
  out.initial.throughput = baseline.value().external.throughput_tps;
  out.initial.latency = baseline.value().external.latency_p99_ms;
  out.best = out.initial;
  out.best_config = base;
  double best_score = 1.0;

  for (int step = 1; step <= budget; ++step) {
    std::vector<double> action(space_.action_dim());
    for (double& a : action) a = rng_.Uniform();
    knobs::Config config = space_.ActionToConfig(action, base);
    out.steps = step;
    if (!safety::ApplyConfig(*db_, config).ok()) {
      ++out.crashes;
      out.step_throughput.push_back(0.0);
      continue;
    }
    auto result = db_->RunStress(spec, stress_duration_s_);
    if (!result.ok()) break;
    double tps = result.value().external.throughput_tps;
    double lat = result.value().external.latency_p99_ms;
    out.step_throughput.push_back(tps);
    double score = 0.5 * (tps / out.initial.throughput) +
                   0.5 * (out.initial.latency / lat);
    if (score > best_score) {
      best_score = score;
      out.best.throughput = tps;
      out.best.latency = lat;
      out.best_config = db_->current_config();
    }
  }
  util::Status final_deploy = safety::ApplyConfig(*db_, out.best_config);
  if (!final_deploy.ok()) {
    CDBTUNE_LOG(Warning) << "random tuner final deploy failed: "
                         << final_deploy.ToString();
  }
  return out;
}

}  // namespace cdbtune::baselines
