#include "env/simulated_cdb.h"

#include <cmath>

#include "util/logging.h"

namespace cdbtune::env {

namespace mi = metric_index;

SimulatedCdb::SimulatedCdb(knobs::KnobRegistry registry, EngineProfile profile,
                           HardwareSpec hardware, uint64_t seed)
    : registry_(std::move(registry)),
      profile_(std::move(profile)),
      hardware_(std::move(hardware)),
      minor_surface_(registry_, profile_.core_knob_names,
                     profile_.minor_knob_span),
      config_(registry_.DefaultConfig()),
      rng_(seed) {}

std::unique_ptr<SimulatedCdb> SimulatedCdb::MysqlCdb(HardwareSpec hw,
                                                     uint64_t seed) {
  return std::make_unique<SimulatedCdb>(knobs::BuildMysqlCatalog(),
                                        MysqlCdbProfile(), std::move(hw), seed);
}

std::unique_ptr<SimulatedCdb> SimulatedCdb::LocalMysql(HardwareSpec hw,
                                                       uint64_t seed) {
  return std::make_unique<SimulatedCdb>(knobs::BuildMysqlCatalog(),
                                        LocalMysqlProfile(), std::move(hw),
                                        seed);
}

std::unique_ptr<SimulatedCdb> SimulatedCdb::Postgres(HardwareSpec hw,
                                                     uint64_t seed) {
  return std::make_unique<SimulatedCdb>(knobs::BuildPostgresCatalog(),
                                        PostgresProfile(), std::move(hw), seed);
}

std::unique_ptr<SimulatedCdb> SimulatedCdb::Mongo(HardwareSpec hw,
                                                  uint64_t seed) {
  return std::make_unique<SimulatedCdb>(knobs::BuildMongoCatalog(),
                                        MongoProfile(), std::move(hw), seed);
}

util::Status SimulatedCdb::ApplyConfig(const knobs::Config& config) {
  if (config.size() != registry_.size()) {
    return util::Status::InvalidArgument("config has wrong knob count");
  }
  knobs::Config sanitized = registry_.Sanitize(config);
  ModelInputs in = profile_.extract(registry_, sanitized);

  // Crash rule 1 (Section 5.2.3): redo/journal allocation beyond what the
  // disk can host takes the instance down on restart.
  if (in.log_total_bytes >
      profile_.log_disk_crash_fraction * hardware_.disk_bytes()) {
    ++crash_count_;
    counters_ = MetricsSnapshot{};  // Crash + restart clears counters.
    return util::Status::Crashed(
        "redo log allocation exceeds disk budget; instance failed to start");
  }
  // Crash rule 2: fixed server allocations beyond physical memory.
  if (in.buffer_pool_bytes + in.log_buffer_bytes >
      0.98 * hardware_.ram_bytes()) {
    ++crash_count_;
    counters_ = MetricsSnapshot{};
    return util::Status::Crashed(
        "buffer allocations exceed physical memory; instance OOM-killed");
  }
  config_ = std::move(sanitized);
  return util::Status::Ok();
}

util::Status SimulatedCdb::SetDegrade(const DegradeSpec& spec) {
  if (spec.severity < 0.0 || spec.severity >= 1.0) {
    return util::Status::InvalidArgument(
        "degrade severity must be in [0, 1)");
  }
  if (spec.severity > 0.0) {
    auto index = registry_.FindIndex(spec.knob);
    if (!index.has_value()) {
      return util::Status::InvalidArgument("unknown degrade knob: " +
                                           spec.knob);
    }
    degrade_index_ = *index;
    degrade_default_norm_ =
        registry_.Normalize(registry_.DefaultConfig())[degrade_index_];
  }
  degrade_ = spec;
  return util::Status::Ok();
}

PerfOutcome SimulatedCdb::EvaluateNoiseless(
    const knobs::Config& config, const workload::WorkloadSpec& spec) const {
  knobs::Config sanitized = registry_.Sanitize(config);
  ModelInputs in = profile_.extract(registry_, sanitized);
  in.minor_factor = minor_surface_.Evaluate(sanitized);
  return EvaluatePerformance(in, hardware_, spec, profile_.base_cpu_us);
}

util::StatusOr<StressResult> SimulatedCdb::RunStress(
    const workload::WorkloadSpec& spec, double duration_s) {
  if (duration_s <= 0.0) {
    return util::Status::InvalidArgument("non-positive stress duration");
  }
  StressResult result;
  result.before = counters_;
  result.duration_s = duration_s;

  ModelInputs in = profile_.extract(registry_, config_);
  in.minor_factor = minor_surface_.Evaluate(config_);
  PerfOutcome perf =
      EvaluatePerformance(in, hardware_, spec, profile_.base_cpu_us);

  ++stress_calls_;
  if (degrade_.severity > 0.0 && stress_calls_ > degrade_.after_stress_calls) {
    const double dev = std::fabs(registry_.Normalize(config_)[degrade_index_] -
                                 degrade_default_norm_);
    const double factor =
        std::max(0.05, 1.0 - degrade_.severity * std::min(1.0, dev));
    perf.throughput_tps *= factor;
    perf.latency_mean_ms /= factor;
    perf.latency_p99_ms /= factor;
  }

  // Measurement noise: external metrics are 5 s samples averaged over the
  // run (Section 2.2.2), so the aggregate noise shrinks with duration.
  const double samples = std::max(1.0, duration_s / 5.0);
  const double sigma = 0.018 / std::sqrt(samples);
  const double tps_noise = std::exp(rng_.Gaussian(0.0, sigma));
  const double lat_noise = std::exp(rng_.Gaussian(0.0, sigma * 1.5));

  result.external.throughput_tps = perf.throughput_tps * tps_noise;
  result.external.latency_mean_ms = perf.latency_mean_ms / tps_noise;
  result.external.latency_p99_ms = perf.latency_p99_ms * lat_noise / tps_noise;

  IntegrateCounters(perf, spec, duration_s);
  FillStateGauges(perf, in, spec);
  result.after = counters_;
  return result;
}

void SimulatedCdb::Reset() {
  config_ = registry_.DefaultConfig();
  counters_ = MetricsSnapshot{};
  crash_count_ = 0;
  stress_calls_ = 0;
}

void SimulatedCdb::FillStateGauges(const PerfOutcome& perf,
                                   const ModelInputs& in,
                                   const workload::WorkloadSpec& spec) {
  const double page_bytes = 16.0 * 1024.0;
  const double pages_total = in.buffer_pool_bytes / page_bytes;
  // Pool fill: bounded by how much data the workload can pull in.
  const double data_bytes = spec.data_size_gb * 1024.0 * 1024.0 * 1024.0;
  const double pages_data =
      std::min(pages_total * 0.97, data_bytes / page_bytes);
  const double jitter = 1.0 + rng_.Gaussian(0.0, 0.01);

  counters_[mi::kBufferPoolPagesTotal] = pages_total;
  counters_[mi::kBufferPoolPagesData] = pages_data * jitter;
  counters_[mi::kBufferPoolPagesDirty] =
      pages_data * perf.dirty_page_fraction * jitter;
  counters_[mi::kBufferPoolPagesMisc] = pages_total * 0.02;
  counters_[mi::kBufferPoolPagesFree] =
      std::max(0.0, pages_total - pages_data - pages_total * 0.02);
  counters_[mi::kPageSize] = page_bytes;
  counters_[mi::kThreadsRunning] = perf.admitted_threads * jitter;
  counters_[mi::kThreadsConnected] = perf.effective_concurrency;
  counters_[mi::kThreadsCached] =
      std::max(0.0, perf.effective_concurrency * 0.1);
  counters_[mi::kOpenTables] = 16.0;  // Sysbench-style schema.
  counters_[mi::kOpenFiles] = 64.0;
  counters_[mi::kRowLockCurrentWaits] =
      perf.lock_contention * perf.admitted_threads * jitter;
  counters_[mi::kNumOpenFiles] = 48.0;
  counters_[mi::kQcacheFreeMemory] = 0.0;
}

void SimulatedCdb::IntegrateCounters(const PerfOutcome& perf,
                                     const workload::WorkloadSpec& spec,
                                     double dur) {
  auto add = [&](size_t idx, double rate) {
    counters_[idx] += std::max(0.0, rate) * dur *
                      (1.0 + rng_.Gaussian(0.0, 0.005));
  };
  const double tps = perf.throughput_tps;
  const double ops = std::max(1.0, spec.ops_per_txn);
  const double reads = ops * spec.read_fraction;
  const double scans = reads * spec.scan_fraction;
  const double points = reads - scans;
  const double writes = ops * (1.0 - spec.read_fraction);
  const double inserts = writes * spec.insert_fraction;
  const double updates = writes - inserts;

  add(mi::kBpReadRequests, perf.read_request_rate);
  add(mi::kBpReads, perf.physical_read_rate);
  add(mi::kBpWriteRequests, perf.write_request_rate);
  add(mi::kBpPagesFlushed, perf.page_flush_rate);
  add(mi::kBpReadAhead, perf.physical_read_rate * 0.2);
  add(mi::kBpReadAheadEvicted, perf.physical_read_rate * 0.02);
  add(mi::kBpWaitFree, perf.page_flush_rate * 0.01 *
                           std::max(0.0, perf.checkpoint_penalty - 1.0));
  add(mi::kDataRead, perf.physical_read_rate * 16.0 * 1024.0);
  add(mi::kDataReads, perf.physical_read_rate);
  add(mi::kDataWrites, perf.page_flush_rate);
  add(mi::kDataWritten, perf.page_flush_rate * 16.0 * 1024.0);
  add(mi::kDataFsyncs, perf.fsync_rate);
  add(mi::kDataPendingReads, perf.physical_read_rate * 0.002);
  add(mi::kDataPendingWrites, perf.page_flush_rate * 0.002);
  add(mi::kLogWriteRequests, perf.log_write_rate * 1.5);
  add(mi::kLogWrites, perf.log_write_rate);
  add(mi::kLogWaits, perf.log_wait_rate);
  add(mi::kOsLogFsyncs, perf.fsync_rate);
  add(mi::kOsLogWritten, perf.log_write_rate * 512.0);
  add(mi::kPagesCreated, tps * inserts * 0.05);
  add(mi::kPagesRead, perf.physical_read_rate);
  add(mi::kPagesWritten, perf.page_flush_rate);
  add(mi::kRowsRead, tps * (points + scans * spec.scan_length));
  add(mi::kRowsInserted, tps * inserts);
  add(mi::kRowsUpdated, tps * updates);
  add(mi::kRowsDeleted, tps * inserts * 0.5);
  add(mi::kRowLockTime, perf.lock_wait_rate * 25.0);
  add(mi::kRowLockWaits, perf.lock_wait_rate);
  add(mi::kRowLockTimeAvg, perf.lock_contention * 10.0);
  add(mi::kLockTimeouts, perf.lock_wait_rate * 0.01);
  add(mi::kComSelect, tps * reads);
  add(mi::kComInsert, tps * inserts);
  add(mi::kComUpdate, tps * updates);
  add(mi::kComDelete, tps * inserts * 0.5);
  add(mi::kComCommit, tps);
  add(mi::kComRollback, tps * 0.002);
  add(mi::kQuestions, tps * ops);
  add(mi::kQueries, tps * ops);
  add(mi::kBytesReceived, tps * ops * 120.0);
  add(mi::kBytesSent, tps * (points * 220.0 + scans * spec.scan_length * 200.0));
  add(mi::kCreatedTmpTables, tps * spec.sort_heavy_fraction * 1.2);
  add(mi::kCreatedTmpDiskTables, perf.tmp_disk_table_rate);
  add(mi::kSortMergePasses, perf.sort_merge_rate);
  add(mi::kSortRows, tps * spec.sort_heavy_fraction * spec.scan_length);
  add(mi::kSelectScan, tps * scans);
  add(mi::kSelectRange, tps * scans * 0.7);
  add(mi::kTableLocksWaited, perf.lock_wait_rate * 0.05);
  add(mi::kAbortedConnects,
      std::max(0.0, static_cast<double>(spec.client_threads) -
                        perf.effective_concurrency) *
          0.01);
  add(mi::kSlowQueries, tps * 0.001 * perf.checkpoint_penalty);
}

}  // namespace cdbtune::env
