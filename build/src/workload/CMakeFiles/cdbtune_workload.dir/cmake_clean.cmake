file(REMOVE_RECURSE
  "CMakeFiles/cdbtune_workload.dir/generator.cc.o"
  "CMakeFiles/cdbtune_workload.dir/generator.cc.o.d"
  "CMakeFiles/cdbtune_workload.dir/workload.cc.o"
  "CMakeFiles/cdbtune_workload.dir/workload.cc.o.d"
  "libcdbtune_workload.a"
  "libcdbtune_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdbtune_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
