#ifndef CDBTUNE_PERSIST_CHUNK_H_
#define CDBTUNE_PERSIST_CHUNK_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "persist/encoding.h"
#include "util/status.h"

namespace cdbtune::persist {

/// Checkpoint container format (DESIGN.md §9):
///
///   [8]  magic "CDBTCKP1" (version baked into the last byte)
///   then one frame per chunk:
///     [4]  name length (u32, little-endian)
///     [n]  name bytes ("agent/actor", "server/pool", ...)
///     [8]  payload length (u64)
///     [p]  payload bytes
///     [4]  CRC32 over everything since the frame start
///   final frame: name "__end__", payload = u64 count of preceding chunks
///
/// The trailing __end__ frame doubles as a commit record: a file whose last
/// frame is not __end__ (or that has bytes after it) was torn mid-write and
/// is rejected wholesale. Every frame is independently CRC-guarded, so a
/// single flipped bit anywhere — name, length or payload — fails the load.
inline constexpr char kCheckpointMagic[] = "CDBTCKP1";
inline constexpr size_t kCheckpointMagicSize = 8;
inline constexpr std::string_view kEndChunkName = "__end__";

/// Accumulates named chunks and renders the container bytes. Chunk names
/// must be unique; writing in a deterministic order is the caller's job
/// (the file is compared bitwise in tests).
class ChunkWriter {
 public:
  /// Adds one named chunk. Duplicate names are an error at Finish().
  void Add(std::string name, std::string payload);

  /// Renders magic + frames + __end__ commit frame.
  [[nodiscard]] util::StatusOr<std::string> Finish() const;

  size_t chunk_count() const { return chunks_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> chunks_;
};

/// Parsed view of a checkpoint container. `Parse` validates the magic, every
/// frame's CRC and bounds, the __end__ commit record, the declared chunk
/// count and name uniqueness before returning; a ChunkFile in hand is
/// structurally sound, so loaders only need to decode payloads.
class ChunkFile {
 public:
  /// An empty (zero-chunk) file; placeholder until Parse() assigns one.
  ChunkFile() = default;

  static util::StatusOr<ChunkFile> Parse(std::string bytes);

  bool Has(std::string_view name) const;
  /// Payload of chunk `name`, or kNotFound. The view is valid for the
  /// lifetime of this ChunkFile.
  util::StatusOr<std::string_view> Get(std::string_view name) const;
  /// Get() + a fully-consumed Decoder handed to `fn` (signature
  /// util::Status(Decoder&)); decode errors surface as kDataLoss tagged
  /// with the chunk name.
  template <typename Fn>
  util::Status Decode(std::string_view name, Fn&& fn) const {
    auto payload = Get(name);
    CDBTUNE_RETURN_IF_ERROR(payload.status());
    Decoder dec(*payload);
    CDBTUNE_RETURN_IF_ERROR(std::forward<Fn>(fn)(dec));
    util::Status done = dec.Finish();
    if (!done.ok()) {
      return util::Status::DataLoss("chunk \"" + std::string(name) +
                                    "\": " + done.ToString());
    }
    return util::Status::Ok();
  }

  /// Chunk names in file order.
  std::vector<std::string> Names() const;
  size_t chunk_count() const { return index_.size(); }

 private:
  std::string bytes_;
  // name -> (offset, size) of the payload inside bytes_.
  std::map<std::string, std::pair<size_t, size_t>, std::less<>> index_;
  std::vector<std::string> order_;
};

}  // namespace cdbtune::persist

#endif  // CDBTUNE_PERSIST_CHUNK_H_
