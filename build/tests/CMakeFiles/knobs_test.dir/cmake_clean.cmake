file(REMOVE_RECURSE
  "CMakeFiles/knobs_test.dir/knobs_test.cc.o"
  "CMakeFiles/knobs_test.dir/knobs_test.cc.o.d"
  "knobs_test"
  "knobs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
