file(REMOVE_RECURSE
  "CMakeFiles/cdbtune_rl.dir/ddpg.cc.o"
  "CMakeFiles/cdbtune_rl.dir/ddpg.cc.o.d"
  "CMakeFiles/cdbtune_rl.dir/dqn.cc.o"
  "CMakeFiles/cdbtune_rl.dir/dqn.cc.o.d"
  "CMakeFiles/cdbtune_rl.dir/noise.cc.o"
  "CMakeFiles/cdbtune_rl.dir/noise.cc.o.d"
  "CMakeFiles/cdbtune_rl.dir/qlearning.cc.o"
  "CMakeFiles/cdbtune_rl.dir/qlearning.cc.o.d"
  "CMakeFiles/cdbtune_rl.dir/replay.cc.o"
  "CMakeFiles/cdbtune_rl.dir/replay.cc.o.d"
  "libcdbtune_rl.a"
  "libcdbtune_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdbtune_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
