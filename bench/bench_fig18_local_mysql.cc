// Reproduces Figure 18 (Appendix C.3): TPC-C on a locally-hosted MySQL
// (same knob catalog as the cloud CDB but without the cloud proxy's
// per-query overhead), instance CDB-C.
//
// Expected shape (paper): same ordering as the cloud results — CDBTune
// best — showing the tuner does not depend on cloud-specific behavior.
#include "bench_common.h"

int main() {
  using namespace cdbtune;
  auto spec = workload::Tpcc();
  auto db = env::SimulatedCdb::LocalMysql(env::CdbC(), 109);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  bench::Budgets budgets;
  budgets.cdbtune_offline_steps = 600;
  budgets.seed = 109;

  std::vector<bench::ContenderResult> rows;
  rows.push_back(bench::RunDefault(*db, spec));
  rows.push_back(bench::RunCdbDefault(*db, spec));
  rows.push_back(bench::RunBestConfig(*db, space, spec, budgets));
  rows.push_back(bench::RunDba(*db, spec));
  rows.push_back(bench::RunOtterTune(*db, space, spec, budgets));
  rows.push_back(bench::RunCdbTune(*db, space, spec, budgets));
  bench::PrintContenders("Figure 18: TPC-C on local MySQL (CDB-C)", rows);
  return 0;
}
