// Multi-session tuning server throughput (the tentpole subsystem's perf
// surface): complete tuning episodes per second as the number of concurrent
// tenants grows 1 -> 16 in-process and 64 -> 1024 over the epoll/TCP binary
// front end (one live connection per tenant — the C10K surface), and the
// latency of greedy model recommendations while round-stepping is in
// flight. Results merge into BENCH_exec_time.json via
// bench/run_benchmarks.sh.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include "bench_common.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/simulated_cdb.h"
#include "server/dispatch.h"
#include "server/net/frame_client.h"
#include "server/net/tcp_server.h"
#include "server/tuning_server.h"
#include "tuner/cdbtune.h"
#include "util/thread_pool.h"

namespace cdbtune {
namespace {

/// One small standard model, trained once and cloned into every server.
tuner::CdbTuner& TrainedTuner() {
  struct Model {
    std::unique_ptr<env::SimulatedCdb> db;
    std::unique_ptr<tuner::CdbTuner> tuner;
  };
  static Model* model = [] {
    auto* m = new Model;
    m->db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 71);
    auto space = knobs::KnobSpace::AllTunable(&m->db->registry());
    tuner::CdbTuneOptions options;
    options.max_offline_steps = 40;
    options.steps_per_episode = 10;
    options.seed = 71;
    m->tuner = std::make_unique<tuner::CdbTuner>(m->db.get(), space, options);
    m->tuner->OfflineTrain(workload::SysbenchReadWrite());
    return m;
  }();
  return *model->tuner;
}

server::SessionSpec SimSpec(uint64_t seed, int max_steps) {
  server::SessionSpec spec;
  spec.engine = "sim";
  spec.seed = seed;
  spec.max_steps = max_steps;
  return spec;
}

/// Full tuning episodes — open N sessions, round-step to completion, close —
/// reported as sessions tuned per second.
void BM_ServerEpisodes(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  util::ComputeContext::Get().SetThreads(4);
  uint64_t seed = 1;
  for (auto _ : state) {
    server::TuningServer srv;
    if (!srv.AdoptModel(TrainedTuner()).ok()) {
      state.SkipWithError("AdoptModel failed");
      break;
    }
    std::vector<int> ids;
    for (size_t i = 0; i < sessions; ++i) {
      auto id = srv.Open(SimSpec(seed++, /*max_steps=*/5));
      if (!id.ok()) {
        state.SkipWithError("Open failed");
        break;
      }
      ids.push_back(*id);
    }
    while (true) {
      auto stepped = srv.StepRound();
      if (!stepped.ok() || *stepped == 0) break;
    }
    for (int id : ids) {
      benchmark::DoNotOptimize(srv.Close(id));
    }
  }
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * sessions),
      benchmark::Counter::kIsRate);
  util::ComputeContext::Get().SetThreads(0);
}
BENCHMARK(BM_ServerEpisodes)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// The same episode workload through the epoll/TCP binary front end, one
/// live connection per tenant held open for the whole episode — so the
/// reactor multiplexes `sessions` concurrent connections while an admin
/// connection drives the rounds. Reported, like BM_ServerEpisodes, as
/// sessions tuned per second: comparing the two series isolates the
/// transport's overhead, and ~linear decay across 64 -> 1024 is the C10K
/// acceptance gate.
void BM_ServerEpisodesTcp(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  util::ComputeContext::Get().SetThreads(4);
  uint64_t seed = 1;
  for (auto _ : state) {
    server::TuningServerOptions server_options;
    server_options.max_sessions = sessions;
    // Small per-shard rings keep 1024 tenants' unmerged experience bounded.
    server_options.shard_capacity = 8;
    server::TuningServer srv(server_options);
    if (!srv.AdoptModel(TrainedTuner()).ok()) {
      state.SkipWithError("AdoptModel failed");
      break;
    }
    server::Dispatcher dispatcher(&srv);
    server::net::TcpServerOptions tcp_options;
    tcp_options.max_connections = sessions + 8;
    server::net::TcpServer front(&dispatcher, tcp_options);
    dispatcher.RegisterTransport(&front);
    if (!front.Start().ok()) {
      state.SkipWithError("TcpServer Start failed");
      break;
    }
    std::vector<std::unique_ptr<server::net::FrameClient>> clients;
    clients.reserve(sessions);
    bool failed = false;
    for (size_t i = 0; i < sessions && !failed; ++i) {
      auto client = std::make_unique<server::net::FrameClient>();
      if (!client->Connect("127.0.0.1", front.port()).ok()) {
        state.SkipWithError("Connect failed");
        failed = true;
        break;
      }
      auto opened = client->Call("OPEN engine=sim seed=" +
                                 std::to_string(seed++) + " steps=5");
      if (!opened.ok() || opened->rfind("OK id=", 0) != 0) {
        state.SkipWithError("OPEN over TCP failed");
        failed = true;
        break;
      }
      clients.push_back(std::move(client));
    }
    if (!failed) {
      server::net::FrameClient admin;
      if (!admin.Connect("127.0.0.1", front.port()).ok()) {
        state.SkipWithError("admin Connect failed");
        failed = true;
      }
      while (!failed) {
        auto round = admin.Call("ROUND");
        if (!round.ok()) {
          state.SkipWithError("ROUND over TCP failed");
          failed = true;
          break;
        }
        if (round->find("sessions=0") != std::string::npos) break;
      }
      for (size_t i = 0; i < clients.size() && !failed; ++i) {
        auto closed = clients[i]->Call("CLOSE id=" + std::to_string(i));
        if (!closed.ok() || closed->rfind("OK", 0) != 0) {
          state.SkipWithError("CLOSE over TCP failed");
          failed = true;
        }
      }
    }
    clients.clear();
    front.Stop();
    if (failed) break;
  }
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * sessions),
      benchmark::Counter::kIsRate);
  util::ComputeContext::Get().SetThreads(0);
}
BENCHMARK(BM_ServerEpisodesTcp)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Greedy recommendation latency while 8 tenants round-step in the
/// background — measures contention on the shared-model lock.
void BM_RecommendUnderLoad(benchmark::State& state) {
  util::ComputeContext::Get().SetThreads(4);
  server::TuningServer srv;
  if (!srv.AdoptModel(TrainedTuner()).ok()) {
    state.SkipWithError("AdoptModel failed");
    return;
  }
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // A budget the benchmark never exhausts keeps the load steady.
    if (!srv.Open(SimSpec(seed, /*max_steps=*/1 << 20)).ok()) {
      state.SkipWithError("Open failed");
      return;
    }
  }
  std::atomic<bool> stop{false};
  std::thread load([&] {
    // lint: allow(atomic-ordering) — plain quit flag: the loader only needs
    // to *eventually* observe the store, and no other data is published
    // through it (join() below is the real synchronization point).
    while (!stop.load(std::memory_order_relaxed)) {
      auto stepped = srv.StepRound();
      if (!stepped.ok() || *stepped == 0) break;
    }
  });
  std::vector<double> s(TrainedTuner().agent().options().state_dim, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(srv.Recommend(s));
  }
  // lint: allow(atomic-ordering) — see the matching relaxed load above.
  stop.store(true, std::memory_order_relaxed);
  load.join();
  srv.DrainAndStop();
  util::ComputeContext::Get().SetThreads(0);
}
BENCHMARK(BM_RecommendUnderLoad)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cdbtune

// Custom main instead of BENCHMARK_MAIN(): records host/environment
// metadata (load average, CPU model, SIMD tier, thread count) into the
// JSON context so saved reports are self-describing.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The 1024-tenant TCP series holds ~2x that many descriptors open at once
  // (client + server end per connection); lift a default 1024 soft limit to
  // whatever the hard limit allows before the reactor starts accepting.
  rlimit files;
  if (::getrlimit(RLIMIT_NOFILE, &files) == 0 && files.rlim_cur < 8192) {
    rlimit raised = files;
    raised.rlim_cur =
        files.rlim_max == RLIM_INFINITY
            ? 8192
            : (files.rlim_max < 8192 ? files.rlim_max : rlim_t{8192});
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
      std::fprintf(stderr,
                   "warning: could not raise RLIMIT_NOFILE above %llu; "
                   "BM_ServerEpisodesTcp/1024 may fail\n",
                   static_cast<unsigned long long>(files.rlim_cur));
    }
  }
  cdbtune::bench::AddBenchEnvironmentContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
