#ifndef CDBTUNE_UTIL_LOGGING_H_
#define CDBTUNE_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cdbtune::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
/// Defaults to kInfo. Thread-compatible (set once at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line that emits on destruction. Not for direct use;
/// see the CDBTUNE_LOG / CDBTUNE_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace cdbtune::util

#define CDBTUNE_LOG(level)                                             \
  ::cdbtune::util::internal_logging::LogMessage(                       \
      ::cdbtune::util::LogLevel::k##level, __FILE__, __LINE__)         \
      .stream()

// The CDBTUNE_CHECK* contract macros live in util/check.h; include that
// header (not this one) for assertions.

#endif  // CDBTUNE_UTIL_LOGGING_H_
