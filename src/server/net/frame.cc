#include "server/net/frame.h"

#include <cstdio>
#include <cstring>

namespace cdbtune::server::net {

namespace {

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 24) & 0xff));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "REQUEST";
    case FrameType::kResponse:
      return "RESPONSE";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kBusy:
      return "BUSY";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&wire, kFrameMagic);
  wire.push_back(static_cast<char>(kFrameVersion));
  wire.push_back(static_cast<char>(type));
  wire.push_back('\0');  // reserved
  wire.push_back('\0');  // reserved
  PutU32(&wire, static_cast<uint32_t>(payload.size()));
  wire.append(payload.data(), payload.size());
  return wire;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // streaming many frames keeps the buffer O(one frame), not O(history).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

util::StatusOr<bool> FrameDecoder::Next(Frame* out) {
  if (!error_.ok()) return error_;
  if (pending_bytes() < kFrameHeaderBytes) return false;
  const char* header = buffer_.data() + consumed_;

  const uint32_t magic = GetU32(header);
  if (magic != kFrameMagic) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "0x%08x", magic);
    error_ = util::Status::InvalidArgument(
        std::string("bad frame magic ") + hex +
        " (not a cdbtune binary-protocol peer?)");
    return error_;
  }
  const uint8_t version = static_cast<unsigned char>(header[4]);
  if (version != kFrameVersion) {
    error_ = util::Status::InvalidArgument(
        "unsupported frame version " + std::to_string(version) + " (want " +
        std::to_string(kFrameVersion) + ")");
    return error_;
  }
  if (header[6] != '\0' || header[7] != '\0') {
    error_ = util::Status::InvalidArgument("nonzero reserved frame bytes");
    return error_;
  }
  const uint8_t type = static_cast<unsigned char>(header[5]);
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kBusy)) {
    error_ = util::Status::InvalidArgument("unknown frame type " +
                                           std::to_string(type));
    return error_;
  }
  const uint32_t length = GetU32(header + 8);
  if (length > max_payload_) {
    error_ = util::Status::InvalidArgument(
        "declared frame length " + std::to_string(length) +
        " exceeds the " + std::to_string(max_payload_) + "-byte cap");
    return error_;
  }
  if (pending_bytes() < kFrameHeaderBytes + length) return false;

  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  return true;
}

}  // namespace cdbtune::server::net
