#ifndef CDBTUNE_ENV_METRICS_H_
#define CDBTUNE_ENV_METRICS_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace cdbtune::env {

/// Number of internal metrics exposed by the database ("show status"),
/// exactly as in the paper: 63 metrics = 14 state values + 49 cumulative
/// counters (Section 2.1.1).
inline constexpr size_t kNumInternalMetrics = 63;
inline constexpr size_t kNumStateMetrics = 14;
inline constexpr size_t kNumCumulativeMetrics = 49;

/// How a metric behaves over time, which decides how the metrics collector
/// turns samples into one state feature (Section 2.2.2): state values are
/// averaged over the interval; cumulative values are differenced.
enum class MetricKind { kState, kCumulative };

/// Stable name of internal metric `index` (MySQL-status flavored).
const char* InternalMetricName(size_t index);

/// Kind of internal metric `index`: indices [0, 14) are state values,
/// [14, 63) cumulative counters.
MetricKind InternalMetricKind(size_t index);

/// Raw snapshot of the 63 internal metrics at one instant. Cumulative
/// entries are monotonically increasing counters since instance start;
/// state entries are point-in-time gauges.
using MetricsSnapshot = std::array<double, kNumInternalMetrics>;

/// External (performance) metrics, sampled every 5 seconds during a stress
/// test and aggregated by the collector (Section 2.2.2).
struct ExternalMetrics {
  /// Transactions per second.
  double throughput_tps = 0.0;
  /// 99th-percentile request latency in milliseconds.
  double latency_p99_ms = 0.0;
  /// Mean request latency in milliseconds.
  double latency_mean_ms = 0.0;
};

/// Outcome of one stress test (the paper's ~150 s workload run): the
/// counter snapshots bracketing the run plus aggregated performance.
struct StressResult {
  MetricsSnapshot before{};
  MetricsSnapshot after{};
  double duration_s = 0.0;
  ExternalMetrics external;
};

/// Index constants for the metrics the performance model populates
/// directly. Kept in one place so the simulator, the mini engine and tests
/// agree on the layout.
namespace metric_index {
// --- State values (gauges), indices 0..13 ---
inline constexpr size_t kBufferPoolPagesTotal = 0;
inline constexpr size_t kBufferPoolPagesFree = 1;
inline constexpr size_t kBufferPoolPagesDirty = 2;
inline constexpr size_t kBufferPoolPagesData = 3;
inline constexpr size_t kBufferPoolPagesMisc = 4;
inline constexpr size_t kPageSize = 5;
inline constexpr size_t kThreadsRunning = 6;
inline constexpr size_t kThreadsConnected = 7;
inline constexpr size_t kThreadsCached = 8;
inline constexpr size_t kOpenTables = 9;
inline constexpr size_t kOpenFiles = 10;
inline constexpr size_t kRowLockCurrentWaits = 11;
inline constexpr size_t kNumOpenFiles = 12;
inline constexpr size_t kQcacheFreeMemory = 13;
// --- Cumulative counters, indices 14..62 ---
inline constexpr size_t kBpReadRequests = 14;
inline constexpr size_t kBpReads = 15;
inline constexpr size_t kBpWriteRequests = 16;
inline constexpr size_t kBpPagesFlushed = 17;
inline constexpr size_t kBpReadAhead = 18;
inline constexpr size_t kBpReadAheadEvicted = 19;
inline constexpr size_t kBpWaitFree = 20;
inline constexpr size_t kDataRead = 21;
inline constexpr size_t kDataReads = 22;
inline constexpr size_t kDataWrites = 23;
inline constexpr size_t kDataWritten = 24;
inline constexpr size_t kDataFsyncs = 25;
inline constexpr size_t kDataPendingReads = 26;
inline constexpr size_t kDataPendingWrites = 27;
inline constexpr size_t kLogWriteRequests = 28;
inline constexpr size_t kLogWrites = 29;
inline constexpr size_t kLogWaits = 30;
inline constexpr size_t kOsLogFsyncs = 31;
inline constexpr size_t kOsLogWritten = 32;
inline constexpr size_t kPagesCreated = 33;
inline constexpr size_t kPagesRead = 34;
inline constexpr size_t kPagesWritten = 35;
inline constexpr size_t kRowsRead = 36;
inline constexpr size_t kRowsInserted = 37;
inline constexpr size_t kRowsUpdated = 38;
inline constexpr size_t kRowsDeleted = 39;
inline constexpr size_t kRowLockTime = 40;
inline constexpr size_t kRowLockWaits = 41;
inline constexpr size_t kRowLockTimeAvg = 42;
inline constexpr size_t kLockTimeouts = 43;
inline constexpr size_t kComSelect = 44;
inline constexpr size_t kComInsert = 45;
inline constexpr size_t kComUpdate = 46;
inline constexpr size_t kComDelete = 47;
inline constexpr size_t kComCommit = 48;
inline constexpr size_t kComRollback = 49;
inline constexpr size_t kQuestions = 50;
inline constexpr size_t kQueries = 51;
inline constexpr size_t kBytesReceived = 52;
inline constexpr size_t kBytesSent = 53;
inline constexpr size_t kCreatedTmpTables = 54;
inline constexpr size_t kCreatedTmpDiskTables = 55;
inline constexpr size_t kSortMergePasses = 56;
inline constexpr size_t kSortRows = 57;
inline constexpr size_t kSelectScan = 58;
inline constexpr size_t kSelectRange = 59;
inline constexpr size_t kTableLocksWaited = 60;
inline constexpr size_t kAbortedConnects = 61;
inline constexpr size_t kSlowQueries = 62;
}  // namespace metric_index

/// All 63 metric names in index order.
std::vector<std::string> AllInternalMetricNames();

}  // namespace cdbtune::env

#endif  // CDBTUNE_ENV_METRICS_H_
