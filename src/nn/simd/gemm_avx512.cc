// AVX-512 tier: 512-bit register-blocked GEMM microkernels using only the
// AVX512F subset (no DQ/VL, so any avx512f CPU qualifies). Compiled with
// -mavx512f -ffp-contract=off; like the AVX2 tier, every kernel is explicit
// mul-then-add — never a fused multiply-add — so results stay bitwise
// identical to the scalar reference. Ragged column tails use masked
// loads/stores instead of a scalar loop: a zero-masked load yields 0.0 in
// the dead lanes and the masked store discards them, so tail arithmetic is
// still per-element identical to the reference.
#include "nn/simd/gemm.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>

namespace cdbtune::nn::simd {

namespace {

/// Column-strip width: one microtile row spans two zmm registers.
constexpr size_t kW = 16;
/// Microtile height. 8 rows x 2 vectors = 16 accumulators, 2 B vectors and
/// 1 broadcast of the 32 zmm registers.
constexpr size_t kTileRows = 8;

void Avx512PackB(const double* b, double* bp, size_t k, size_t m) {
  const size_t strips = m / kW;
  for (size_t s = 0; s < strips; ++s) {
    const double* src = b + s * kW;
    double* dst = bp + s * k * kW;
    for (size_t p = 0; p < k; ++p) {
      _mm512_storeu_pd(dst, _mm512_loadu_pd(src));
      _mm512_storeu_pd(dst + 8, _mm512_loadu_pd(src + 8));
      src += m;
      dst += kW;
    }
  }
}

/// One kRows x 16 output tile over a full-width strip.
template <int kRows>
void RowTile(const double* a, size_t lda, const double* bsrc, size_t bstride,
             double* o, size_t ldo, size_t k) {
  __m512d acc[kRows][2];
  for (int r = 0; r < kRows; ++r) {
    acc[r][0] = _mm512_loadu_pd(o + r * ldo);
    acc[r][1] = _mm512_loadu_pd(o + r * ldo + 8);
  }
  for (size_t p = 0; p < k; ++p) {
    const double* b_row = bsrc + p * bstride;
    const __m512d b0 = _mm512_loadu_pd(b_row);
    const __m512d b1 = _mm512_loadu_pd(b_row + 8);
    for (int r = 0; r < kRows; ++r) {
      const double av = a[r * lda + p];
      if (av == 0.0) continue;  // Preserve the reference zero-skip exactly.
      const __m512d av_v = _mm512_set1_pd(av);
      acc[r][0] = _mm512_add_pd(acc[r][0], _mm512_mul_pd(av_v, b0));
      acc[r][1] = _mm512_add_pd(acc[r][1], _mm512_mul_pd(av_v, b1));
    }
  }
  for (int r = 0; r < kRows; ++r) {
    _mm512_storeu_pd(o + r * ldo, acc[r][0]);
    _mm512_storeu_pd(o + r * ldo + 8, acc[r][1]);
  }
}

/// One kRows x width tile over the ragged tail strip (width in 1..15),
/// reading raw B. Masked loads keep dead lanes at 0.0 and never touch
/// memory past the row end; masked stores write only the live lanes.
template <int kRows>
void TailTile(const double* a, size_t lda, const double* b, size_t bstride,
              double* o, size_t ldo, size_t k, size_t width) {
  const __mmask8 m0 =
      static_cast<__mmask8>(width >= 8 ? 0xFF : (1U << width) - 1U);
  const __mmask8 m1 =
      static_cast<__mmask8>(width > 8 ? (1U << (width - 8)) - 1U : 0U);
  __m512d acc[kRows][2];
  for (int r = 0; r < kRows; ++r) {
    acc[r][0] = _mm512_maskz_loadu_pd(m0, o + r * ldo);
    acc[r][1] = _mm512_maskz_loadu_pd(m1, o + r * ldo + 8);
  }
  for (size_t p = 0; p < k; ++p) {
    const double* b_row = b + p * bstride;
    const __m512d b0 = _mm512_maskz_loadu_pd(m0, b_row);
    const __m512d b1 = _mm512_maskz_loadu_pd(m1, b_row + 8);
    for (int r = 0; r < kRows; ++r) {
      const double av = a[r * lda + p];
      if (av == 0.0) continue;
      const __m512d av_v = _mm512_set1_pd(av);
      acc[r][0] = _mm512_add_pd(acc[r][0], _mm512_mul_pd(av_v, b0));
      acc[r][1] = _mm512_add_pd(acc[r][1], _mm512_mul_pd(av_v, b1));
    }
  }
  for (int r = 0; r < kRows; ++r) {
    _mm512_mask_storeu_pd(o + r * ldo, m0, acc[r][0]);
    _mm512_mask_storeu_pd(o + r * ldo + 8, m1, acc[r][1]);
  }
}

void RowTileDispatch(int rows, const double* a, size_t lda, const double* bsrc,
                     size_t bstride, double* o, size_t ldo, size_t k) {
  switch (rows) {
    case 8:
      RowTile<8>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 7:
      RowTile<7>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 6:
      RowTile<6>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 5:
      RowTile<5>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 4:
      RowTile<4>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 3:
      RowTile<3>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    case 2:
      RowTile<2>(a, lda, bsrc, bstride, o, ldo, k);
      break;
    default:
      RowTile<1>(a, lda, bsrc, bstride, o, ldo, k);
      break;
  }
}

void TailTileDispatch(int rows, const double* a, size_t lda, const double* b,
                      size_t bstride, double* o, size_t ldo, size_t k,
                      size_t width) {
  switch (rows) {
    case 8:
      TailTile<8>(a, lda, b, bstride, o, ldo, k, width);
      break;
    case 7:
      TailTile<7>(a, lda, b, bstride, o, ldo, k, width);
      break;
    case 6:
      TailTile<6>(a, lda, b, bstride, o, ldo, k, width);
      break;
    case 5:
      TailTile<5>(a, lda, b, bstride, o, ldo, k, width);
      break;
    case 4:
      TailTile<4>(a, lda, b, bstride, o, ldo, k, width);
      break;
    case 3:
      TailTile<3>(a, lda, b, bstride, o, ldo, k, width);
      break;
    case 2:
      TailTile<2>(a, lda, b, bstride, o, ldo, k, width);
      break;
    default:
      TailTile<1>(a, lda, b, bstride, o, ldo, k, width);
      break;
  }
}

void Avx512GemmRows(const double* a, const double* b, const double* bp,
                    double* o, size_t k, size_t m, size_t r0, size_t r1) {
  const size_t strips = m / kW;
  const size_t tail_c = strips * kW;
  const size_t tail = m - tail_c;
  for (size_t i = r0; i < r1; i += kTileRows) {
    const int rows = static_cast<int>(std::min(kTileRows, r1 - i));
    const double* a_tile = a + i * k;
    double* o_tile = o + i * m;
    for (size_t s = 0; s < strips; ++s) {
      if (bp != nullptr) {
        RowTileDispatch(rows, a_tile, k, bp + s * k * kW, kW, o_tile + s * kW,
                        m, k);
      } else {
        RowTileDispatch(rows, a_tile, k, b + s * kW, m, o_tile + s * kW, m, k);
      }
    }
    if (tail != 0) {
      TailTileDispatch(rows, a_tile, k, b + tail_c, m, o_tile + tail_c, m, k,
                       tail);
    }
  }
}

void Avx512GemmTaCols(const double* a, const double* b, double* o, size_t n,
                      size_t k, size_t m, size_t p0, size_t p1) {
  const size_t m8 = m - m % 8;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    const double* b0 = b + i * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (size_t p = p0; p < p1; ++p) {
      const double v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      double* o_row = o + p * m;
      const __m512d w0 = _mm512_set1_pd(v0);
      const __m512d w1 = _mm512_set1_pd(v1);
      const __m512d w2 = _mm512_set1_pd(v2);
      const __m512d w3 = _mm512_set1_pd(v3);
      size_t j = 0;
      for (; j < m8; j += 8) {
        // Same association as the scalar quad term:
        // (((v0*b0 + v1*b1) + v2*b2) + v3*b3).
        __m512d t = _mm512_add_pd(_mm512_mul_pd(w0, _mm512_loadu_pd(b0 + j)),
                                  _mm512_mul_pd(w1, _mm512_loadu_pd(b1 + j)));
        t = _mm512_add_pd(t, _mm512_mul_pd(w2, _mm512_loadu_pd(b2 + j)));
        t = _mm512_add_pd(t, _mm512_mul_pd(w3, _mm512_loadu_pd(b3 + j)));
        _mm512_storeu_pd(o_row + j,
                         _mm512_add_pd(_mm512_loadu_pd(o_row + j), t));
      }
      for (; j < m; ++j) {
        o_row[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
      }
    }
  }
  for (; i < n; ++i) {
    const double* a_row = a + i * k;
    const double* b_row = b + i * m;
    for (size_t p = p0; p < p1; ++p) {
      const double av = a_row[p];
      if (av == 0.0) continue;
      double* o_row = o + p * m;
      const __m512d av_v = _mm512_set1_pd(av);
      size_t j = 0;
      for (; j < m8; j += 8) {
        _mm512_storeu_pd(
            o_row + j,
            _mm512_add_pd(_mm512_loadu_pd(o_row + j),
                          _mm512_mul_pd(av_v, _mm512_loadu_pd(b_row + j))));
      }
      for (; j < m; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void Avx512GemmTbRows(const double* a, const double* b, double* o, size_t k,
                      size_t m, size_t r0, size_t r1) {
  const size_t k16 = k - k % kTbLanes;
  for (size_t i = r0; i < r1; ++i) {
    const double* a_row = a + i * k;
    double* o_row = o + i * m;
    for (size_t j = 0; j < m; ++j) {
      const double* b_row = b + j * k;
      // Two zmm accumulators hold the 16 reference lanes: acc0 = lanes
      // 0-7, acc1 = lanes 8-15.
      __m512d acc0 = _mm512_setzero_pd();
      __m512d acc1 = _mm512_setzero_pd();
      for (size_t p = 0; p < k16; p += kTbLanes) {
        acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(_mm512_loadu_pd(a_row + p),
                                                 _mm512_loadu_pd(b_row + p)));
        acc1 = _mm512_add_pd(
            acc1, _mm512_mul_pd(_mm512_loadu_pd(a_row + p + 8),
                                _mm512_loadu_pd(b_row + p + 8)));
      }
      // Reference fold-by-halves: h=8 -> acc0+=acc1; h=4 -> low ymm +=
      // high ymm; h=2 and h=1 inside the low xmm.
      acc0 = _mm512_add_pd(acc0, acc1);
      __m256d ylo = _mm512_castpd512_pd256(acc0);
      const __m256d yhi = _mm512_extractf64x4_pd(acc0, 1);
      ylo = _mm256_add_pd(ylo, yhi);
      __m128d lo = _mm256_castpd256_pd128(ylo);
      const __m128d hi = _mm256_extractf128_pd(ylo, 1);
      lo = _mm_add_pd(lo, hi);
      double acc = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
      for (size_t p = k16; p < k; ++p) acc += a_row[p] * b_row[p];
      o_row[j] = acc;
    }
  }
}

}  // namespace

const GemmKernels kAvx512Kernels = {
    /*name=*/"avx512",
    /*supported=*/true,
    /*pack_width=*/kW,
    /*pack_b=*/&Avx512PackB,
    /*gemm_rows=*/&Avx512GemmRows,
    /*gemm_ta_cols=*/&Avx512GemmTaCols,
    /*gemm_tb_rows=*/&Avx512GemmTbRows,
};

}  // namespace cdbtune::nn::simd

#else  // !__AVX512F__

namespace cdbtune::nn::simd {

const GemmKernels kAvx512Kernels = {
    /*name=*/"avx512",
    /*supported=*/false,
    /*pack_width=*/0,
    /*pack_b=*/nullptr,
    /*gemm_rows=*/nullptr,
    /*gemm_ta_cols=*/nullptr,
    /*gemm_tb_rows=*/nullptr,
};

}  // namespace cdbtune::nn::simd

#endif
