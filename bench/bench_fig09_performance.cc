// Reproduces Figure 9 and Table 3: throughput and 99th-percentile latency of
// CDBTune vs. MySQL default, CDB default, BestConfig, DBA and OtterTune under
// the Sysbench RW / RO / WO workloads on instance CDB-A, plus the
// improvement-percentage table. Also prints the Table 1 instance matrix.
//
// Expected shape (paper): CDBTune best on all three workloads, largest gap
// on write-only (+46% throughput over DBA, +128% over BestConfig, +91% over
// OtterTune); OtterTune inferior to the DBA in most cases; everything beats
// the shipped defaults.
#include <iostream>

#include "bench_common.h"

namespace cdbtune::bench {
namespace {

void PrintTable1() {
  util::PrintBanner(std::cout, "Table 1: instances and hardware configuration");
  util::TablePrinter t({"instance", "RAM (GB)", "disk (GB)", "disk type"});
  for (const auto& hw : {env::CdbA(), env::CdbB(), env::CdbC(), env::CdbD(),
                         env::CdbE()}) {
    t.AddRow({hw.name, util::TablePrinter::Num(hw.ram_gb, 0),
              util::TablePrinter::Num(hw.disk_gb, 0),
              env::DiskTypeName(hw.disk_type)});
  }
  for (const auto& hw : env::CdbX1Variants()) {
    t.AddRow({hw.name, util::TablePrinter::Num(hw.ram_gb, 0),
              util::TablePrinter::Num(hw.disk_gb, 0),
              env::DiskTypeName(hw.disk_type)});
  }
  for (const auto& hw : env::CdbX2Variants()) {
    t.AddRow({hw.name, util::TablePrinter::Num(hw.ram_gb, 0),
              util::TablePrinter::Num(hw.disk_gb, 0),
              env::DiskTypeName(hw.disk_type)});
  }
  t.Print(std::cout);
}

void Run() {
  PrintTable1();

  struct Row {
    std::string workload;
    ContenderResult cdbtune, dba, ottertune, bestconfig;
  };
  std::vector<Row> table3;

  for (auto type : {workload::WorkloadType::kSysbenchReadWrite,
                    workload::WorkloadType::kSysbenchReadOnly,
                    workload::WorkloadType::kSysbenchWriteOnly}) {
    workload::WorkloadSpec spec = workload::MakeWorkload(type);
    Budgets budgets;

    // All six contenders tune their own CDB-A instance side by side on the
    // compute pool (the paper's concurrent-tuning-session deployment).
    std::vector<ContenderResult> rows = RunStandardContenders(
        [] { return env::SimulatedCdb::MysqlCdb(env::CdbA(), 5); }, spec,
        budgets);
    PrintContenders("Figure 9: " + spec.name + " on CDB-A", rows);

    table3.push_back({spec.name, rows[5], rows[3], rows[4], rows[2]});
  }

  util::PrintBanner(std::cout,
                    "Table 3: CDBTune improvement over BestConfig / DBA / "
                    "OtterTune (T = throughput up, L = p99 down)");
  util::TablePrinter t({"workload", "vs BestConfig T", "vs BestConfig L",
                        "vs DBA T", "vs DBA L", "vs OtterTune T",
                        "vs OtterTune L"});
  for (const auto& row : table3) {
    auto t_up = [&](const ContenderResult& other) {
      return util::TablePrinter::Pct(
          row.cdbtune.throughput / other.throughput - 1.0);
    };
    auto l_down = [&](const ContenderResult& other) {
      return util::TablePrinter::Pct(
          1.0 - row.cdbtune.latency_p99 / other.latency_p99);
    };
    t.AddRow({row.workload, t_up(row.bestconfig), l_down(row.bestconfig),
              t_up(row.dba), l_down(row.dba), t_up(row.ottertune),
              l_down(row.ottertune)});
  }
  t.Print(std::cout);
}

}  // namespace
}  // namespace cdbtune::bench

int main() {
  cdbtune::bench::Run();
  return 0;
}
