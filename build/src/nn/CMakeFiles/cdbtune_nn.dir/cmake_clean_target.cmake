file(REMOVE_RECURSE
  "libcdbtune_nn.a"
)
