#include <cmath>

#include "gtest/gtest.h"
#include "knobs/catalogs.h"
#include "knobs/knob.h"
#include "knobs/registry.h"

namespace cdbtune::knobs {
namespace {

KnobDef MakeIntKnob(double min, double max, double def,
                    KnobScale scale = KnobScale::kLinear) {
  KnobDef k;
  k.name = "test_knob";
  k.type = KnobType::kInteger;
  k.scale = scale;
  k.min_value = min;
  k.max_value = max;
  k.default_value = def;
  return k;
}

TEST(KnobValueTest, LinearNormalizeEndpoints) {
  KnobDef k = MakeIntKnob(10, 110, 10);
  EXPECT_DOUBLE_EQ(NormalizeKnobValue(k, 10), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeKnobValue(k, 110), 1.0);
  EXPECT_DOUBLE_EQ(NormalizeKnobValue(k, 60), 0.5);
}

TEST(KnobValueTest, NormalizeClampsOutOfRange) {
  KnobDef k = MakeIntKnob(0, 100, 50);
  EXPECT_DOUBLE_EQ(NormalizeKnobValue(k, -5), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeKnobValue(k, 105), 1.0);
}

TEST(KnobValueTest, LogScaleMidpointIsGeometricMean) {
  KnobDef k = MakeIntKnob(1024, 1024.0 * 1024 * 1024, 1024, KnobScale::kLog);
  double mid = DenormalizeKnobValue(k, 0.5);
  // Midpoint of a log scale sits near sqrt(min*max).
  double geo = std::sqrt(1024.0 * 1024.0 * 1024 * 1024);
  EXPECT_NEAR(std::log(mid), std::log(geo), 0.05);
}

TEST(KnobValueTest, DenormalizeSnapsDiscreteTypes) {
  KnobDef b = MakeIntKnob(0, 1, 0);
  b.type = KnobType::kBoolean;
  EXPECT_DOUBLE_EQ(DenormalizeKnobValue(b, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(DenormalizeKnobValue(b, 0.3), 0.0);

  KnobDef e = MakeIntKnob(0, 2, 0);
  e.type = KnobType::kEnum;
  e.enum_values = {"a", "b", "c"};
  EXPECT_DOUBLE_EQ(DenormalizeKnobValue(e, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(DenormalizeKnobValue(e, 0.99), 2.0);
}

TEST(KnobValueTest, SanitizeClampsAndRounds) {
  KnobDef k = MakeIntKnob(0, 10, 5);
  EXPECT_DOUBLE_EQ(SanitizeKnobValue(k, 3.6), 4.0);
  EXPECT_DOUBLE_EQ(SanitizeKnobValue(k, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(SanitizeKnobValue(k, 99.0), 10.0);
  KnobDef d = k;
  d.type = KnobType::kDouble;
  EXPECT_DOUBLE_EQ(SanitizeKnobValue(d, 3.6), 3.6);
}

// Property: round-trip through normalize/denormalize is idempotent for every
// knob in every catalog (the second pass must be exact because values are
// already snapped to the legal domain).
class CatalogRoundTripTest : public ::testing::TestWithParam<const char*> {
 protected:
  KnobRegistry BuildCatalog() const {
    std::string which = GetParam();
    if (which == "mysql") return BuildMysqlCatalog();
    if (which == "postgres") return BuildPostgresCatalog();
    return BuildMongoCatalog();
  }
};

TEST_P(CatalogRoundTripTest, NormalizeDenormalizeIdempotent) {
  KnobRegistry reg = BuildCatalog();
  for (size_t i = 0; i < reg.size(); ++i) {
    const KnobDef& def = reg.def(i);
    for (double t : {0.0, 0.1, 0.33, 0.5, 0.77, 1.0}) {
      double raw = DenormalizeKnobValue(def, t);
      EXPECT_GE(raw, def.min_value) << def.name;
      EXPECT_LE(raw, def.max_value) << def.name;
      double t2 = NormalizeKnobValue(def, raw);
      double raw2 = DenormalizeKnobValue(def, t2);
      EXPECT_NEAR(raw, raw2, std::max(1e-9, 1e-9 * std::fabs(raw)))
          << def.name << " at t=" << t;
    }
  }
}

TEST_P(CatalogRoundTripTest, DefaultsAreValid) {
  KnobRegistry reg = BuildCatalog();
  EXPECT_TRUE(reg.Validate().ok());
  Config defaults = reg.DefaultConfig();
  Config sanitized = reg.Sanitize(defaults);
  for (size_t i = 0; i < reg.size(); ++i) {
    EXPECT_DOUBLE_EQ(defaults[i], sanitized[i]) << reg.def(i).name;
  }
}

TEST_P(CatalogRoundTripTest, VectorEncodingRoundTrip) {
  KnobRegistry reg = BuildCatalog();
  Config defaults = reg.DefaultConfig();
  std::vector<double> normalized = reg.Normalize(defaults);
  for (double v : normalized) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  Config back = reg.Denormalize(normalized);
  for (size_t i = 0; i < reg.size(); ++i) {
    EXPECT_NEAR(back[i], defaults[i],
                std::max(1e-6, 1e-9 * std::fabs(defaults[i])))
        << reg.def(i).name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCatalogs, CatalogRoundTripTest,
                         ::testing::Values("mysql", "postgres", "mongo"));

TEST(CatalogTest, TunableCountsMatchPaper) {
  EXPECT_EQ(BuildMysqlCatalog().TunableIndices().size(), kMysqlTunableKnobs);
  EXPECT_EQ(BuildPostgresCatalog().TunableIndices().size(),
            kPostgresTunableKnobs);
  EXPECT_EQ(BuildMongoCatalog().TunableIndices().size(), kMongoTunableKnobs);
}

TEST(CatalogTest, MysqlHasBlacklistedKnobs) {
  KnobRegistry reg = BuildMysqlCatalog();
  auto port = reg.FindIndex("port");
  ASSERT_TRUE(port.has_value());
  EXPECT_FALSE(reg.def(*port).tunable);
  // Blacklisted knobs never appear in the tunable set.
  for (size_t idx : reg.TunableIndices()) {
    EXPECT_TRUE(reg.def(idx).tunable);
  }
}

TEST(CatalogTest, CoreKnobsPresentWithRealDefaults) {
  KnobRegistry reg = BuildMysqlCatalog();
  auto bp = reg.FindIndex("innodb_buffer_pool_size");
  ASSERT_TRUE(bp.has_value());
  EXPECT_DOUBLE_EQ(reg.def(*bp).default_value, 128.0 * 1024 * 1024);
  auto flush = reg.FindIndex("innodb_flush_log_at_trx_commit");
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(reg.def(*flush).type, KnobType::kEnum);
  EXPECT_DOUBLE_EQ(reg.def(*flush).default_value, 1.0);
}

TEST(CatalogTest, KnobCountGrowsByVersion) {
  KnobRegistry reg = BuildMysqlCatalog();
  auto counts = reg.KnobCountByVersion();
  ASSERT_GE(counts.size(), 3u);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GT(counts[i].first, counts[i - 1].first);
    EXPECT_GT(counts[i].second, counts[i - 1].second);
  }
  // The newest version exposes the full catalog.
  EXPECT_EQ(counts.back().second, reg.size());
}

TEST(CatalogTest, AllCatalogsGrowAcrossVersions) {
  for (auto build : {BuildPostgresCatalog, BuildMongoCatalog}) {
    KnobRegistry reg = build();
    auto counts = reg.KnobCountByVersion();
    ASSERT_GE(counts.size(), 2u);
    for (size_t i = 1; i < counts.size(); ++i) {
      EXPECT_GT(counts[i].second, counts[i - 1].second);
    }
  }
}

TEST(CatalogTest, LogScaledKnobsNeverNegative) {
  for (auto build :
       {BuildMysqlCatalog, BuildPostgresCatalog, BuildMongoCatalog}) {
    KnobRegistry reg = build();
    for (size_t i = 0; i < reg.size(); ++i) {
      if (reg.def(i).scale == KnobScale::kLog) {
        EXPECT_GE(reg.def(i).min_value, 0.0) << reg.def(i).name;
      }
    }
  }
}

TEST(CatalogTest, EnumKnobsHaveConsistentBounds) {
  KnobRegistry reg = BuildMysqlCatalog();
  for (size_t i = 0; i < reg.size(); ++i) {
    const KnobDef& def = reg.def(i);
    if (def.type == KnobType::kEnum) {
      EXPECT_DOUBLE_EQ(def.min_value, 0.0) << def.name;
      EXPECT_DOUBLE_EQ(def.max_value,
                       static_cast<double>(def.enum_values.size() - 1))
          << def.name;
    }
  }
}

TEST(RegistryTest, FindIndexAndDuplicateCheck) {
  KnobRegistry reg = BuildMysqlCatalog();
  EXPECT_TRUE(reg.FindIndex("innodb_buffer_pool_size").has_value());
  EXPECT_FALSE(reg.FindIndex("does_not_exist").has_value());
}

TEST(RegistryTest, ValidateRejectsBadDefs) {
  KnobDef bad = MakeIntKnob(10, 10, 10);  // Degenerate range.
  bad.name = "bad";
  // Construction is fine; Validate flags it.
  KnobRegistry reg({bad});
  EXPECT_FALSE(reg.Validate().ok());
}

TEST(KnobSpaceTest, AllTunableExcludesBlacklist) {
  KnobRegistry reg = BuildMysqlCatalog();
  KnobSpace space = KnobSpace::AllTunable(&reg);
  EXPECT_EQ(space.action_dim(), kMysqlTunableKnobs);
}

TEST(KnobSpaceTest, ActionOverlaysOnlyActiveKnobs) {
  KnobRegistry reg = BuildMysqlCatalog();
  auto bp = *reg.FindIndex("innodb_buffer_pool_size");
  auto log_size = *reg.FindIndex("innodb_log_file_size");
  KnobSpace space(&reg, {bp, log_size});
  EXPECT_EQ(space.action_dim(), 2u);

  Config base = reg.DefaultConfig();
  Config out = space.ActionToConfig({1.0, 0.0}, base);
  EXPECT_DOUBLE_EQ(out[bp], reg.def(bp).max_value);
  EXPECT_DOUBLE_EQ(out[log_size], reg.def(log_size).min_value);
  // Everything else untouched.
  for (size_t i = 0; i < reg.size(); ++i) {
    if (i != bp && i != log_size) {
      EXPECT_DOUBLE_EQ(out[i], base[i]);
    }
  }
}

TEST(KnobSpaceTest, ConfigToActionInverse) {
  KnobRegistry reg = BuildMysqlCatalog();
  KnobSpace space = KnobSpace::AllTunable(&reg);
  Config base = reg.DefaultConfig();
  std::vector<double> action(space.action_dim(), 0.42);
  Config config = space.ActionToConfig(action, base);
  std::vector<double> recovered = space.ConfigToAction(config);
  Config config2 = space.ActionToConfig(recovered, base);
  for (size_t i = 0; i < config.size(); ++i) {
    EXPECT_NEAR(config[i], config2[i], 1e-6 + 1e-9 * std::fabs(config[i]));
  }
}

TEST(KnobSpaceTest, FromOrderPrefix) {
  KnobRegistry reg = BuildMysqlCatalog();
  auto order = reg.TunableIndices();
  KnobSpace space = KnobSpace::FromOrderPrefix(&reg, order, 20);
  EXPECT_EQ(space.action_dim(), 20u);
  EXPECT_EQ(space.active_indices()[0], order[0]);
}

TEST(KnobSpaceDeathTest, RejectsBlacklistedKnob) {
  KnobRegistry reg = BuildMysqlCatalog();
  auto port = *reg.FindIndex("port");
  EXPECT_DEATH(KnobSpace(&reg, {port}), "black-listed");
}

}  // namespace
}  // namespace cdbtune::knobs
