#include "util/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cdbtune::util {

#if CDBTUNE_DCHECK_ENABLED

namespace {

/// The calling thread's held locks in acquisition order. Because every
/// acquire must strictly exceed the rank of everything already held, the
/// stack is always sorted ascending by rank even when locks are released
/// out of LIFO order, so back() is the maximum held rank.
thread_local std::vector<const Mutex*> tls_held;

/// Death reporting bypasses CDBTUNE_LOG on purpose: the log sink itself is
/// behind a util::Mutex, and reporting a rank violation must not acquire
/// another lock (the violation may involve the sink's own rank).
[[noreturn]] void LockRankDie(const char* what, const Mutex& mu) {
  std::fprintf(stderr, "[FATAL lock-rank] %s '%s' (rank %d)\n", what, mu.name(),
               mu.rank());
  if (tls_held.empty()) {
    std::fprintf(stderr, "  this thread holds no locks\n");
  } else {
    std::fprintf(stderr, "  locks held by this thread (acquisition order):\n");
    for (const Mutex* held : tls_held) {
      std::fprintf(stderr, "    '%s' (rank %d)\n", held->name(), held->rank());
    }
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void Mutex::DebugCheckAcquire() const {
  for (const Mutex* held : tls_held) {
    if (held == this) {
      LockRankDie("self-deadlock: re-entrant acquire of", *this);
    }
  }
  if (!tls_held.empty() && rank_ <= tls_held.back()->rank_) {
    LockRankDie("out-of-order acquire of", *this);
  }
}

void Mutex::DebugNoteAcquired() const { tls_held.push_back(this); }

void Mutex::DebugNoteReleased() const {
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (*it == this) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  LockRankDie("release of unheld", *this);
}

void Mutex::DebugAssertHeld() const {
  for (const Mutex* held : tls_held) {
    if (held == this) return;
  }
  LockRankDie("AssertHeld failed:", *this);
}

void Mutex::DebugCheckWaitPrecondition() const {
  for (const Mutex* held : tls_held) {
    if (held == this) return;
  }
  LockRankDie("CondVar::Wait without holding", *this);
}

#endif  // CDBTUNE_DCHECK_ENABLED

void CondVar::Wait(Mutex& mu) {
#if CDBTUNE_DCHECK_ENABLED
  mu.DebugCheckWaitPrecondition();
  // The wait releases the mutex, so the held-lock record must come off the
  // stack for its duration — another thread legitimately acquires it.
  mu.DebugNoteReleased();
#endif
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();  // cv_.wait reacquired; ownership stays with the caller.
#if CDBTUNE_DCHECK_ENABLED
  // Reacquisition is a fresh acquire: rank-check it against whatever the
  // thread still held across the wait (waiting on anything but the
  // innermost held lock inverts the order on wakeup and dies here).
  mu.DebugCheckAcquire();
  mu.DebugNoteAcquired();
#endif
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace cdbtune::util
