
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bestconfig.cc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/bestconfig.cc.o" "gcc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/bestconfig.cc.o.d"
  "/root/repo/src/baselines/dba.cc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/dba.cc.o" "gcc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/dba.cc.o.d"
  "/root/repo/src/baselines/gp.cc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/gp.cc.o" "gcc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/gp.cc.o.d"
  "/root/repo/src/baselines/lasso.cc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/lasso.cc.o" "gcc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/lasso.cc.o.d"
  "/root/repo/src/baselines/ottertune.cc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/ottertune.cc.o" "gcc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/ottertune.cc.o.d"
  "/root/repo/src/baselines/random_tuner.cc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/random_tuner.cc.o" "gcc" "src/baselines/CMakeFiles/cdbtune_baselines.dir/random_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/cdbtune_env.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cdbtune_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/cdbtune_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/knobs/CMakeFiles/cdbtune_knobs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdbtune_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cdbtune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/cdbtune_rl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
