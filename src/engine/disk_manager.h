#ifndef CDBTUNE_ENGINE_DISK_MANAGER_H_
#define CDBTUNE_ENGINE_DISK_MANAGER_H_

#include <cstring>
#include <vector>

#include "engine/common.h"
#include "env/instance.h"
#include "util/status.h"

namespace cdbtune::engine {

/// Device timing used by the virtual-time disk.
struct DiskTimings {
  VirtualNanos random_read_ns;
  VirtualNanos random_write_ns;
  VirtualNanos fsync_ns;
  /// Per-page cost when the access continues a sequential run.
  VirtualNanos sequential_read_ns;
};

DiskTimings TimingsFor(env::DiskType type);

/// Page store with virtual-time I/O accounting.
///
/// Contents live in memory (this is a simulator substrate), but every page
/// read/write charges realistic device latency to the shared VirtualClock —
/// with a sequential-access discount mirroring real devices — and fsyncs
/// charge flush latency. Capacity is enforced against the instance's disk
/// size, which is what makes oversized redo-log configurations actually
/// fail (Section 5.2.3's crash rule) rather than being screened by an
/// ad-hoc check.
class DiskManager {
 public:
  DiskManager(VirtualClock* clock, env::DiskType type, uint64_t capacity_bytes);

  /// Allocates a fresh zeroed page; fails when the disk is full.
  util::StatusOr<PageId> AllocatePage();

  util::Status ReadPage(PageId page_id, char* out);
  util::Status WritePage(PageId page_id, const char* data);

  /// Reserves raw byte capacity (redo log files); fails when it does not
  /// fit alongside the data pages.
  util::Status ReserveLogBytes(uint64_t bytes);
  void ReleaseLogBytes(uint64_t bytes);

  /// Charges one device flush.
  void Fsync();

  /// Charges sequential log-append cost for `bytes` (the logical record
  /// contents live in the Wal object).
  void AppendLog(uint64_t bytes);

  /// Captures the current page store as the crash-consistent checkpoint
  /// image (WiredTiger-style atomic checkpoint). RevertToCheckpoint
  /// restores it, discarding every page write and allocation since — the
  /// disk state an engine crash exposes.
  void MarkCheckpoint();
  void RevertToCheckpoint();

  uint64_t used_bytes() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_pages() const { return pages_.size(); }

  // Cumulative I/O counters (for the engine's metrics).
  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t writes_issued() const { return writes_issued_; }
  uint64_t fsyncs_issued() const { return fsyncs_issued_; }

 private:
  VirtualClock* clock_;  // Not owned.
  DiskTimings timings_;
  uint64_t capacity_bytes_;
  uint64_t log_reserved_bytes_ = 0;
  std::vector<std::vector<char>> pages_;
  std::vector<std::vector<char>> checkpoint_pages_;
  PageId last_read_page_ = kInvalidPageId;
  uint64_t reads_issued_ = 0;
  uint64_t writes_issued_ = 0;
  uint64_t fsyncs_issued_ = 0;
};

}  // namespace cdbtune::engine

#endif  // CDBTUNE_ENGINE_DISK_MANAGER_H_
