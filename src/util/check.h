#ifndef CDBTUNE_UTIL_CHECK_H_
#define CDBTUNE_UTIL_CHECK_H_

#include <type_traits>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

/// Contract-check library: CDBTUNE_CHECK* macros abort the process with the
/// failing expression, both operand values (for the binary forms) and the
/// source location. They guard programmer errors — violated invariants,
/// impossible states — never recoverable conditions, which return Status.
///
/// The CDBTUNE_DCHECK* twins compile to nothing in Release builds (NDEBUG)
/// unless the build sets CDBTUNE_DCHECK_ENABLED=1 (CMake: -DCDBTUNE_DCHECK=ON),
/// so validators and per-element shape checks cost nothing on the bench path.

#ifndef CDBTUNE_DCHECK_ENABLED
#ifdef NDEBUG
#define CDBTUNE_DCHECK_ENABLED 0
#else
#define CDBTUNE_DCHECK_ENABLED 1
#endif
#endif

namespace cdbtune::util::check_internal {

/// Holds decayed copies of a binary check's operands so each side is
/// evaluated exactly once and can still be streamed into the failure
/// message after the comparison.
// Members are deliberately NOT named lhs/rhs: those are macro parameter
// names in CDBTUNE_CHECK_OP_ and would be text-substituted inside the
// member access.
template <typename A, typename B>
struct Operands {
  A a;
  B b;
};

template <typename A, typename B>
Operands<std::decay_t<A>, std::decay_t<B>> MakeOperands(A&& a, B&& b) {
  return {std::forward<A>(a), std::forward<B>(b)};
}

}  // namespace cdbtune::util::check_internal

/// Internal: a fatal log line carrying the call site.
#define CDBTUNE_CHECK_FAIL_STREAM()                                       \
  ::cdbtune::util::internal_logging::LogMessage(                          \
      ::cdbtune::util::LogLevel::kError, __FILE__, __LINE__, /*fatal=*/true) \
      .stream()

/// Aborts with a diagnostic when `condition` is false. Extra context can be
/// streamed: CDBTUNE_CHECK(ok) << "while doing " << thing;
#define CDBTUNE_CHECK(condition) \
  if (!(condition)) CDBTUNE_CHECK_FAIL_STREAM() << "Check failed: " #condition " "

/// Aborts when a Status-returning expression is not OK.
#define CDBTUNE_CHECK_OK(expr)                                       \
  do {                                                               \
    const ::cdbtune::util::Status _cdbtune_check_status = (expr);    \
    CDBTUNE_CHECK(_cdbtune_check_status.ok())                        \
        << _cdbtune_check_status.ToString() << " ";                  \
  } while (false)

/// Internal: binary comparison with single evaluation of each operand and
/// both values in the failure message.
#define CDBTUNE_CHECK_OP_(op, lhs, rhs)                                    \
  if (auto _cdbtune_ops =                                                  \
          ::cdbtune::util::check_internal::MakeOperands((lhs), (rhs));     \
      !(_cdbtune_ops.a op _cdbtune_ops.b))                                 \
  CDBTUNE_CHECK_FAIL_STREAM() << "Check failed: " #lhs " " #op " " #rhs    \
                              << " (" << _cdbtune_ops.a << " vs "          \
                              << _cdbtune_ops.b << ") "

#define CDBTUNE_CHECK_EQ(lhs, rhs) CDBTUNE_CHECK_OP_(==, lhs, rhs)
#define CDBTUNE_CHECK_NE(lhs, rhs) CDBTUNE_CHECK_OP_(!=, lhs, rhs)
#define CDBTUNE_CHECK_LT(lhs, rhs) CDBTUNE_CHECK_OP_(<, lhs, rhs)
#define CDBTUNE_CHECK_LE(lhs, rhs) CDBTUNE_CHECK_OP_(<=, lhs, rhs)
#define CDBTUNE_CHECK_GT(lhs, rhs) CDBTUNE_CHECK_OP_(>, lhs, rhs)
#define CDBTUNE_CHECK_GE(lhs, rhs) CDBTUNE_CHECK_OP_(>=, lhs, rhs)

// Debug-only twins. When disabled they still parse their arguments (so the
// expressions stay compile-checked and variables used only in DCHECKs don't
// warn) but never evaluate them: the `while (false)` guard is dead code the
// optimizer removes entirely.
#if CDBTUNE_DCHECK_ENABLED
#define CDBTUNE_DCHECK(condition) CDBTUNE_CHECK(condition)
#define CDBTUNE_DCHECK_OK(expr) CDBTUNE_CHECK_OK(expr)
#define CDBTUNE_DCHECK_EQ(lhs, rhs) CDBTUNE_CHECK_EQ(lhs, rhs)
#define CDBTUNE_DCHECK_NE(lhs, rhs) CDBTUNE_CHECK_NE(lhs, rhs)
#define CDBTUNE_DCHECK_LT(lhs, rhs) CDBTUNE_CHECK_LT(lhs, rhs)
#define CDBTUNE_DCHECK_LE(lhs, rhs) CDBTUNE_CHECK_LE(lhs, rhs)
#define CDBTUNE_DCHECK_GT(lhs, rhs) CDBTUNE_CHECK_GT(lhs, rhs)
#define CDBTUNE_DCHECK_GE(lhs, rhs) CDBTUNE_CHECK_GE(lhs, rhs)
#else
#define CDBTUNE_DCHECK(condition) \
  while (false) CDBTUNE_CHECK(condition)
#define CDBTUNE_DCHECK_OK(expr) \
  while (false) CDBTUNE_CHECK_OK(expr)
#define CDBTUNE_DCHECK_EQ(lhs, rhs) \
  while (false) CDBTUNE_CHECK_EQ(lhs, rhs)
#define CDBTUNE_DCHECK_NE(lhs, rhs) \
  while (false) CDBTUNE_CHECK_NE(lhs, rhs)
#define CDBTUNE_DCHECK_LT(lhs, rhs) \
  while (false) CDBTUNE_CHECK_LT(lhs, rhs)
#define CDBTUNE_DCHECK_LE(lhs, rhs) \
  while (false) CDBTUNE_CHECK_LE(lhs, rhs)
#define CDBTUNE_DCHECK_GT(lhs, rhs) \
  while (false) CDBTUNE_CHECK_GT(lhs, rhs)
#define CDBTUNE_DCHECK_GE(lhs, rhs) \
  while (false) CDBTUNE_CHECK_GE(lhs, rhs)
#endif

#endif  // CDBTUNE_UTIL_CHECK_H_
