# Empty compiler generated dependencies file for bench_fig07_knobs_ottertune_order.
# This may be replaced when dependencies are built.
