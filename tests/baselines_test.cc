#include <cmath>

#include "gtest/gtest.h"
#include "baselines/bestconfig.h"
#include "baselines/dba.h"
#include "baselines/gp.h"
#include "baselines/lasso.h"
#include "baselines/ottertune.h"
#include "baselines/random_tuner.h"
#include "env/simulated_cdb.h"

namespace cdbtune::baselines {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// --- Cholesky / GP ---------------------------------------------------------------

TEST(CholeskyTest, DecomposesKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  std::vector<double> a{4, 2, 2, 3};
  ASSERT_TRUE(CholeskyDecompose(a, 2));
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[1], 0.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  std::vector<double> a{1, 2, 2, 1};  // Eigenvalues 3 and -1.
  EXPECT_FALSE(CholeskyDecompose(a, 2));
}

TEST(GpTest, InterpolatesTrainingPoints) {
  GaussianProcess gp({.length_scale = 0.5, .signal_var = 1.0, .noise_var = 1e-8});
  std::vector<std::vector<double>> x{{0.0}, {0.5}, {1.0}};
  std::vector<double> y{1.0, 2.0, 0.5};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    double mean = 0, var = 0;
    gp.Predict(x[i], &mean, &var);
    EXPECT_NEAR(mean, y[i], 1e-3);
    EXPECT_LT(var, 1e-4);  // Near-zero uncertainty at training points.
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp({.length_scale = 0.3, .signal_var = 1.0, .noise_var = 1e-6});
  ASSERT_TRUE(gp.Fit({{0.0}}, {1.0}).ok());
  double mean_near = 0, var_near = 0, mean_far = 0, var_far = 0;
  gp.Predict({0.05}, &mean_near, &var_near);
  gp.Predict({3.0}, &mean_far, &var_far);
  EXPECT_LT(var_near, var_far);
  EXPECT_NEAR(var_far, 1.0, 1e-3);  // Prior variance far away.
  // Far from data the mean reverts to the target mean.
  EXPECT_NEAR(mean_far, 1.0, 1e-6);
}

TEST(GpTest, LearnsSmoothFunction) {
  GaussianProcess gp({.length_scale = 0.4, .signal_var = 1.0, .noise_var = 1e-4});
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    double t = i / 20.0;
    x.push_back({t});
    y.push_back(std::sin(4.0 * t));
  }
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (double t : {0.13, 0.47, 0.81}) {
    double mean = 0;
    gp.Predict({t}, &mean, nullptr);
    EXPECT_NEAR(mean, std::sin(4.0 * t), 0.05) << t;
  }
}

TEST(GpTest, UcbAndEiBehave) {
  GaussianProcess gp({.length_scale = 0.3, .signal_var = 1.0, .noise_var = 1e-6});
  ASSERT_TRUE(gp.Fit({{0.0}, {1.0}}, {0.0, 1.0}).ok());
  double mean = 0;
  gp.Predict({0.5}, &mean, nullptr);
  EXPECT_GT(gp.Ucb({0.5}, 2.0), mean);
  EXPECT_GE(gp.ExpectedImprovement({0.5}, 2.0), 0.0);
  // EI over an unbeatable incumbent is ~zero at a known bad point.
  EXPECT_LT(gp.ExpectedImprovement({0.0}, 5.0), 1e-6);
}

TEST(GpTest, RejectsBadInput) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{1.0}}, {1.0, 2.0}).ok());
}

// --- Lasso ------------------------------------------------------------------------

TEST(LassoTest, RecoversSparseSignal) {
  // y = 3*x0 - 2*x3, other 6 features are noise.
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(8);
    for (double& v : row) v = rng.Gaussian();
    x.push_back(row);
    y.push_back(3.0 * row[0] - 2.0 * row[3] + rng.Gaussian(0.0, 0.01));
  }
  Lasso lasso({.lambda = 0.05, .max_iterations = 1000, .tolerance = 1e-9});
  lasso.Fit(x, y);
  auto rank = lasso.RankFeatures();
  EXPECT_TRUE((rank[0] == 0 && rank[1] == 3) || (rank[0] == 3 && rank[1] == 0));
  // Irrelevant features shrink to (near) zero.
  for (size_t j : {1, 2, 4, 5, 6, 7}) {
    EXPECT_LT(std::fabs(lasso.weights()[j]), 0.05) << j;
  }
}

TEST(LassoTest, StrongRegularizationZeroesEverything) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back({rng.Gaussian()});
    y.push_back(0.1 * x.back()[0]);
  }
  Lasso lasso({.lambda = 100.0, .max_iterations = 100, .tolerance = 1e-9});
  lasso.Fit(x, y);
  EXPECT_DOUBLE_EQ(lasso.weights()[0], 0.0);
}

TEST(LassoTest, PredictsOnRawScale) {
  std::vector<std::vector<double>> x{{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<double> y{1.0, 3.0, 5.0, 7.0};  // y = 2x + 1.
  Lasso lasso({.lambda = 1e-4, .max_iterations = 2000, .tolerance = 1e-12});
  lasso.Fit(x, y);
  EXPECT_NEAR(lasso.Predict({1.5}), 4.0, 0.05);
}

// --- DBA --------------------------------------------------------------------------

TEST(DbaTest, ImportanceOrderIsValidPermutationPrefix) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  auto order = DbaTuner::ImportanceOrder(reg);
  EXPECT_EQ(order.size(), reg.TunableIndices().size());
  std::set<size_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
  // The most important knob for a MySQL DBA is the buffer pool.
  EXPECT_EQ(order[0], *reg.FindIndex("innodb_buffer_pool_size"));
}

TEST(DbaTest, RecommendationScalesWithHardware) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  auto w = workload::SysbenchReadWrite();
  knobs::Config small = DbaTuner::Recommend(reg, env::CdbA(), w,
                                            reg.DefaultConfig());
  knobs::Config large = DbaTuner::Recommend(
      reg, env::MakeInstance("big", 64, 500), w, reg.DefaultConfig());
  auto bp = *reg.FindIndex("innodb_buffer_pool_size");
  EXPECT_GT(large[bp], small[bp]);
  // ~72% of RAM.
  EXPECT_NEAR(small[bp], 0.72 * 8 * kGiB, 0.05 * 8 * kGiB);
}

TEST(DbaTest, DurabilityStaysStrict) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  knobs::Config rec = DbaTuner::Recommend(reg, env::CdbA(),
                                          workload::SysbenchWriteOnly(),
                                          reg.DefaultConfig());
  EXPECT_DOUBLE_EQ(rec[*reg.FindIndex("innodb_flush_log_at_trx_commit")], 1.0);
  EXPECT_DOUBLE_EQ(rec[*reg.FindIndex("sync_binlog")], 1.0);
}

TEST(DbaTest, WorkloadConditionalRules) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  knobs::Config olap = DbaTuner::Recommend(reg, env::CdbC(), workload::Tpch(),
                                           reg.DefaultConfig());
  knobs::Config oltp = DbaTuner::Recommend(reg, env::CdbC(), workload::Tpcc(),
                                           reg.DefaultConfig());
  auto sort_buffer = *reg.FindIndex("sort_buffer_size");
  EXPECT_GT(olap[sort_buffer], oltp[sort_buffer]);
}

TEST(DbaTest, KnobBudgetLimitsTouchedKnobs) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  knobs::Config base = reg.DefaultConfig();
  knobs::Config rec = DbaTuner::Recommend(reg, env::CdbA(),
                                          workload::SysbenchReadWrite(), base,
                                          /*knob_budget=*/5);
  auto order = DbaTuner::ImportanceOrder(reg);
  std::set<size_t> allowed(order.begin(), order.begin() + 5);
  for (size_t i = 0; i < reg.size(); ++i) {
    if (!allowed.count(i)) {
      EXPECT_DOUBLE_EQ(rec[i], base[i]) << reg.def(i).name;
    }
  }
}

TEST(DbaTest, RecommendationIsWithinRangesAndSafe) {
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  for (const auto& hw :
       {env::CdbA(), env::CdbE(), env::MakeInstance("tiny", 4, 32)}) {
    knobs::Config rec = DbaTuner::Recommend(
        reg, hw, workload::SysbenchWriteOnly(), reg.DefaultConfig());
    auto db = env::SimulatedCdb::MysqlCdb(hw);
    EXPECT_TRUE(db->ApplyConfig(rec).ok()) << hw.name;
  }
}

TEST(DbaTest, TuneOnceImprovesOverDefault) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 20);
  BaselineResult result =
      DbaTuner::TuneOnce(*db, workload::SysbenchReadWrite());
  EXPECT_GT(result.best.throughput, result.initial.throughput * 1.5);
  EXPECT_LT(result.best.latency, result.initial.latency);
}

// --- BestConfig ----------------------------------------------------------------

TEST(BestConfigTest, ImprovesWithinBudget) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 21);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  BestConfigOptions options;
  options.budget = 30;
  BestConfig bc(db.get(), space, options);
  BaselineResult result = bc.Search(workload::SysbenchReadWrite());
  EXPECT_EQ(result.steps, 30);
  EXPECT_EQ(result.step_throughput.size(), 30u);
  EXPECT_GT(result.best.throughput, result.initial.throughput);
}

TEST(BestConfigTest, NoMemoryAcrossRequests) {
  // Two identical requests search from scratch: their step sequences match
  // when the environment noise is removed from the picture (same seeds).
  auto db1 = env::SimulatedCdb::MysqlCdb(env::CdbA(), 22);
  auto db2 = env::SimulatedCdb::MysqlCdb(env::CdbA(), 22);
  auto space1 = knobs::KnobSpace::AllTunable(&db1->registry());
  auto space2 = knobs::KnobSpace::AllTunable(&db2->registry());
  BestConfigOptions options;
  options.budget = 10;
  BestConfig a(db1.get(), space1, options);
  BestConfig b(db2.get(), space2, options);
  auto r1 = a.Search(workload::SysbenchReadWrite());
  auto r2 = b.Search(workload::SysbenchReadWrite());
  ASSERT_EQ(r1.step_throughput.size(), r2.step_throughput.size());
  for (size_t i = 0; i < r1.step_throughput.size(); ++i) {
    EXPECT_NEAR(r1.step_throughput[i], r2.step_throughput[i],
                1e-9 + 0.05 * r1.step_throughput[i]);
  }
}

TEST(BestConfigTest, DdsSamplesCoverEveryDimensionSlice) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 23);
  auto reg = &db->registry();
  auto bp = *reg->FindIndex("innodb_buffer_pool_size");
  auto lf = *reg->FindIndex("innodb_log_file_size");
  knobs::KnobSpace space(reg, {bp, lf});
  BestConfigOptions options;
  options.budget = 10;
  options.samples_per_round = 10;
  BestConfig bc(db.get(), space, options);
  auto result = bc.Search(workload::SysbenchReadWrite());
  EXPECT_EQ(result.steps, 10);
}

// --- OtterTune --------------------------------------------------------------------

TEST(OtterTuneTest, CollectSamplesPopulatesRepository) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 24);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTuneOptions options;
  OtterTune ot(db.get(), space, options);
  ot.CollectSamples(workload::SysbenchReadWrite(), 20);
  EXPECT_GE(ot.repository_size(), 18u);  // Crashed samples still recorded.
}

TEST(OtterTuneTest, TuneImprovesWithWarmRepository) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 25);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTuneOptions options;
  options.online_steps = 8;
  options.candidate_count = 200;
  OtterTune ot(db.get(), space, options);
  ot.CollectSamples(workload::SysbenchReadWrite(), 60);
  db->Reset();
  BaselineResult result = ot.Tune(workload::SysbenchReadWrite());
  EXPECT_EQ(result.steps, 8);
  EXPECT_GT(result.best.throughput, result.initial.throughput * 1.2);
}

TEST(OtterTuneTest, WorkloadMappingPicksNearestHistory) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 26);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTune ot(db.get(), space, OtterTuneOptions{});
  // Two histories: an RW one with informative scores and a TPC-H one.
  ot.CollectSamples(workload::SysbenchReadWrite(), 15);
  ot.CollectSamples(workload::Tpch(), 15);
  EXPECT_GE(ot.repository_size(), 28u);
  // Tuning RO (closest to RW) still works end to end.
  db->Reset();
  BaselineResult result = ot.Tune(workload::SysbenchReadOnly(), 3);
  EXPECT_EQ(result.steps, 3);
}

TEST(OtterTuneTest, RankKnobsReturnsPermutation) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 27);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTune ot(db.get(), space, OtterTuneOptions{});
  ot.CollectSamples(workload::SysbenchReadWrite(), 30);
  auto rank = ot.RankKnobs();
  EXPECT_EQ(rank.size(), space.action_dim());
  std::set<size_t> unique(rank.begin(), rank.end());
  EXPECT_EQ(unique.size(), rank.size());
}

TEST(OtterTuneTest, DnnVariantRuns) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 28);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTuneOptions options;
  options.use_dnn = true;
  options.dnn_epochs = 30;
  options.candidate_count = 100;
  OtterTune ot(db.get(), space, options);
  ot.CollectSamples(workload::SysbenchReadWrite(), 30);
  db->Reset();
  BaselineResult result = ot.Tune(workload::SysbenchReadWrite(), 4);
  EXPECT_EQ(result.steps, 4);
  EXPECT_GT(result.best.throughput, 0.0);
}

TEST(OtterTuneTest, GpSubsamplingKeepsTuningFunctional) {
  // Repositories beyond gp_max_samples trigger the subsampled fit path.
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 30);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTuneOptions options;
  options.gp_max_samples = 20;
  options.candidate_count = 100;
  OtterTune ot(db.get(), space, options);
  ot.CollectSamples(workload::SysbenchReadWrite(), 40);
  db->Reset();
  BaselineResult result = ot.Tune(workload::SysbenchReadWrite(), 3);
  EXPECT_EQ(result.steps, 3);
  EXPECT_GT(result.best.throughput, 0.0);
}

TEST(GpTest, AutoLengthScaleGrowsWithDimension) {
  // The constructor replaces a non-positive length scale with
  // 0.35 * sqrt(dim); verify via prediction behavior: with a tiny manual
  // length scale, a far point reverts to the prior mean; with the auto
  // scale it generalizes.
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 31);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  OtterTuneOptions manual;
  manual.gp.length_scale = 0.1;
  OtterTune narrow(db.get(), space, manual);
  OtterTuneOptions automatic;  // length_scale = 0 -> auto.
  OtterTune wide(db.get(), space, automatic);
  // Indirect but sufficient: both construct and run a tuning step.
  narrow.CollectSamples(workload::SysbenchReadWrite(), 10);
  SUCCEED();
}

// --- RandomTuner -----------------------------------------------------------------

TEST(RandomTunerTest, BudgetAndMonotoneBest) {
  auto db = env::SimulatedCdb::MysqlCdb(env::CdbA(), 29);
  auto space = knobs::KnobSpace::AllTunable(&db->registry());
  RandomTuner tuner(db.get(), space);
  BaselineResult result = tuner.Search(workload::SysbenchReadWrite(), 15);
  EXPECT_EQ(result.steps, 15);
  EXPECT_GE(result.best.throughput, result.initial.throughput);
}

}  // namespace
}  // namespace cdbtune::baselines
