#include "engine/btree.h"

#include <cstring>

#include "util/logging.h"

namespace cdbtune::engine {

util::StatusOr<std::unique_ptr<BTree>> BTree::Create(BufferPool* pool) {
  CDBTUNE_CHECK(pool != nullptr);
  std::unique_ptr<BTree> tree(new BTree(pool));
  PageId root_id;
  auto root = pool->NewPage(&root_id);
  if (!root.ok()) return root.status();
  Page::Header h;
  h.page_id = root_id;
  h.type = PageType::kBTreeLeaf;
  h.num_entries = 0;
  h.next_page = kInvalidPageId;
  root.value()->set_header(h);
  pool->UnpinPage(root_id, /*dirty=*/true);
  tree->root_ = root_id;
  return tree;
}

std::unique_ptr<BTree> BTree::Attach(BufferPool* pool, PageId root,
                                     size_t height, size_t num_entries) {
  CDBTUNE_CHECK(pool != nullptr);
  std::unique_ptr<BTree> tree(new BTree(pool));
  tree->root_ = root;
  tree->height_ = height;
  tree->num_entries_ = num_entries;
  return tree;
}

size_t BTree::LeafLowerBound(const Page& page, uint64_t key) {
  size_t lo = 0, hi = page.header().num_entries;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (page.LeafKey(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t BTree::InternalLowerSlot(const Page& page, uint64_t key) {
  // Entry 0 is the sentinel minimum; find the last slot with key <= target.
  size_t n = page.header().num_entries;
  CDBTUNE_CHECK(n > 0) << "empty internal page";
  size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    size_t mid = (lo + hi + 1) / 2;
    if (page.InternalKey(mid) <= key) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

util::StatusOr<PageId> BTree::FindLeaf(uint64_t key,
                                       std::vector<PathEntry>* path) {
  PageId current = root_;
  while (true) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    Page::Header h = page.value()->header();
    if (h.type == PageType::kBTreeLeaf) {
      pool_->UnpinPage(current, /*dirty=*/false);
      return current;
    }
    size_t slot = InternalLowerSlot(*page.value(), key);
    PageId child = page.value()->InternalChild(slot);
    pool_->UnpinPage(current, /*dirty=*/false);
    if (path != nullptr) path->push_back({current, slot});
    current = child;
  }
}

util::StatusOr<bool> BTree::Get(uint64_t key, char* payload) {
  auto leaf_id = FindLeaf(key, nullptr);
  if (!leaf_id.ok()) return leaf_id.status();
  auto page = pool_->FetchPage(leaf_id.value());
  if (!page.ok()) return page.status();
  const Page& leaf = *page.value();
  size_t slot = LeafLowerBound(leaf, key);
  bool found =
      slot < leaf.header().num_entries && leaf.LeafKey(slot) == key;
  if (found && payload != nullptr) {
    uint64_t k;
    leaf.LeafEntry(slot, &k, payload);
  }
  pool_->UnpinPage(leaf_id.value(), /*dirty=*/false);
  return found;
}

util::StatusOr<bool> BTree::Update(uint64_t key, const char* payload) {
  auto leaf_id = FindLeaf(key, nullptr);
  if (!leaf_id.ok()) return leaf_id.status();
  auto page = pool_->FetchPage(leaf_id.value());
  if (!page.ok()) return page.status();
  Page& leaf = *page.value();
  size_t slot = LeafLowerBound(leaf, key);
  bool found =
      slot < leaf.header().num_entries && leaf.LeafKey(slot) == key;
  if (found) leaf.SetLeafEntry(slot, key, payload);
  pool_->UnpinPage(leaf_id.value(), /*dirty=*/found);
  return found;
}

util::StatusOr<bool> BTree::Delete(uint64_t key) {
  auto leaf_id = FindLeaf(key, nullptr);
  if (!leaf_id.ok()) return leaf_id.status();
  auto page = pool_->FetchPage(leaf_id.value());
  if (!page.ok()) return page.status();
  Page& leaf = *page.value();
  Page::Header h = leaf.header();
  size_t slot = LeafLowerBound(leaf, key);
  bool found = slot < h.num_entries && leaf.LeafKey(slot) == key;
  if (found) {
    leaf.ShiftLeafEntries(slot + 1, h.num_entries - slot - 1, -1);
    --h.num_entries;
    leaf.set_header(h);
    --num_entries_;
  }
  pool_->UnpinPage(leaf_id.value(), /*dirty=*/found);
  return found;
}

util::StatusOr<size_t> BTree::Scan(uint64_t start_key, size_t max_rows) {
  auto leaf_id = FindLeaf(start_key, nullptr);
  if (!leaf_id.ok()) return leaf_id.status();
  PageId current = leaf_id.value();
  size_t visited = 0;
  char payload[kRecordPayload];
  bool first = true;
  while (current != kInvalidPageId && visited < max_rows) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    const Page& leaf = *page.value();
    Page::Header h = leaf.header();
    size_t slot = first ? LeafLowerBound(leaf, start_key) : 0;
    first = false;
    for (; slot < h.num_entries && visited < max_rows; ++slot) {
      uint64_t k;
      leaf.LeafEntry(slot, &k, payload);
      ++visited;
    }
    pool_->UnpinPage(current, /*dirty=*/false);
    current = h.next_page;
  }
  return visited;
}

util::Status BTree::InsertIntoParent(std::vector<PathEntry>& path,
                                     uint64_t separator, PageId right_id) {
  if (path.empty()) {
    // Split reached the root: grow the tree by one level.
    PageId old_root = root_;
    PageId new_root_id;
    auto new_root = pool_->NewPage(&new_root_id);
    if (!new_root.ok()) return new_root.status();
    Page::Header h;
    h.page_id = new_root_id;
    h.type = PageType::kBTreeInternal;
    h.num_entries = 2;
    h.next_page = kInvalidPageId;
    new_root.value()->set_header(h);
    new_root.value()->SetInternalEntry(0, 0, old_root);
    new_root.value()->SetInternalEntry(1, separator, right_id);
    pool_->UnpinPage(new_root_id, /*dirty=*/true);
    root_ = new_root_id;
    ++height_;
    return util::Status::Ok();
  }

  PathEntry parent_entry = path.back();
  path.pop_back();
  auto page = pool_->FetchPage(parent_entry.page_id);
  if (!page.ok()) return page.status();
  Page& parent = *page.value();
  Page::Header h = parent.header();
  CDBTUNE_CHECK(h.type == PageType::kBTreeInternal);

  if (h.num_entries < Page::kInternalCapacity) {
    size_t insert_at = parent_entry.slot + 1;
    parent.ShiftInternalEntries(insert_at, h.num_entries - insert_at, 1);
    parent.SetInternalEntry(insert_at, separator, right_id);
    ++h.num_entries;
    parent.set_header(h);
    pool_->UnpinPage(parent_entry.page_id, /*dirty=*/true);
    return util::Status::Ok();
  }

  // Parent full: split it, then recurse.
  PageId new_right_id;
  auto new_right = pool_->NewPage(&new_right_id);
  if (!new_right.ok()) {
    pool_->UnpinPage(parent_entry.page_id, /*dirty=*/false);
    return new_right.status();
  }
  size_t mid = h.num_entries / 2;
  uint64_t up_key = parent.InternalKey(mid);
  Page::Header rh;
  rh.page_id = new_right_id;
  rh.type = PageType::kBTreeInternal;
  rh.num_entries = static_cast<uint32_t>(h.num_entries - mid);
  rh.next_page = kInvalidPageId;
  for (size_t i = mid; i < h.num_entries; ++i) {
    new_right.value()->SetInternalEntry(i - mid, parent.InternalKey(i),
                                        parent.InternalChild(i));
  }
  new_right.value()->set_header(rh);
  h.num_entries = static_cast<uint32_t>(mid);
  parent.set_header(h);

  // Insert the new separator into whichever half now covers it.
  Page* target = separator < up_key ? &parent : new_right.value();
  Page::Header th = target->header();
  size_t slot = InternalLowerSlot(*target, separator);
  target->ShiftInternalEntries(slot + 1, th.num_entries - slot - 1, 1);
  target->SetInternalEntry(slot + 1, separator, right_id);
  ++th.num_entries;
  target->set_header(th);

  pool_->UnpinPage(parent_entry.page_id, /*dirty=*/true);
  pool_->UnpinPage(new_right_id, /*dirty=*/true);
  return InsertIntoParent(path, up_key, new_right_id);
}

util::Status BTree::Insert(uint64_t key, const char* payload) {
  std::vector<PathEntry> path;
  auto leaf_id = FindLeaf(key, &path);
  if (!leaf_id.ok()) return leaf_id.status();
  auto page = pool_->FetchPage(leaf_id.value());
  if (!page.ok()) return page.status();
  Page& leaf = *page.value();
  Page::Header h = leaf.header();

  size_t slot = LeafLowerBound(leaf, key);
  if (slot < h.num_entries && leaf.LeafKey(slot) == key) {
    leaf.SetLeafEntry(slot, key, payload);
    pool_->UnpinPage(leaf_id.value(), /*dirty=*/true);
    return util::Status::Ok();
  }

  if (h.num_entries < Page::kLeafCapacity) {
    leaf.ShiftLeafEntries(slot, h.num_entries - slot, 1);
    leaf.SetLeafEntry(slot, key, payload);
    ++h.num_entries;
    leaf.set_header(h);
    pool_->UnpinPage(leaf_id.value(), /*dirty=*/true);
    ++num_entries_;
    return util::Status::Ok();
  }

  // Leaf split.
  PageId right_id;
  auto right = pool_->NewPage(&right_id);
  if (!right.ok()) {
    pool_->UnpinPage(leaf_id.value(), /*dirty=*/false);
    return right.status();
  }
  size_t mid = h.num_entries / 2;
  Page::Header rh;
  rh.page_id = right_id;
  rh.type = PageType::kBTreeLeaf;
  rh.num_entries = static_cast<uint32_t>(h.num_entries - mid);
  rh.next_page = h.next_page;
  char buf[kRecordPayload];
  for (size_t i = mid; i < h.num_entries; ++i) {
    uint64_t k;
    leaf.LeafEntry(i, &k, buf);
    right.value()->SetLeafEntry(i - mid, k, buf);
  }
  right.value()->set_header(rh);
  h.num_entries = static_cast<uint32_t>(mid);
  h.next_page = right_id;
  leaf.set_header(h);

  uint64_t separator = right.value()->LeafKey(0);
  // Insert the new record into the correct half.
  Page* target = key < separator ? &leaf : right.value();
  Page::Header th = target->header();
  size_t tslot = LeafLowerBound(*target, key);
  target->ShiftLeafEntries(tslot, th.num_entries - tslot, 1);
  target->SetLeafEntry(tslot, key, payload);
  ++th.num_entries;
  target->set_header(th);

  pool_->UnpinPage(leaf_id.value(), /*dirty=*/true);
  pool_->UnpinPage(right_id, /*dirty=*/true);
  ++num_entries_;
  return InsertIntoParent(path, separator, right_id);
}

util::Status BTree::CheckInvariants() {
  // Walk down the leftmost spine to the leaf level, then traverse the leaf
  // chain verifying global key ordering and per-page sortedness.
  PageId current = root_;
  size_t depth = 1;
  while (true) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    Page::Header h = page.value()->header();
    if (h.type == PageType::kBTreeLeaf) {
      pool_->UnpinPage(current, /*dirty=*/false);
      break;
    }
    // Internal keys must be strictly increasing after the sentinel.
    for (size_t i = 2; i < h.num_entries; ++i) {
      if (page.value()->InternalKey(i - 1) >= page.value()->InternalKey(i)) {
        pool_->UnpinPage(current, /*dirty=*/false);
        return util::Status::Internal("internal keys out of order");
      }
    }
    PageId child = page.value()->InternalChild(0);
    pool_->UnpinPage(current, /*dirty=*/false);
    current = child;
    ++depth;
  }
  if (depth != height_) {
    return util::Status::Internal("height bookkeeping mismatch");
  }

  size_t counted = 0;
  bool have_prev = false;
  uint64_t prev = 0;
  while (current != kInvalidPageId) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    Page::Header h = page.value()->header();
    for (size_t i = 0; i < h.num_entries; ++i) {
      uint64_t k = page.value()->LeafKey(i);
      if (have_prev && k <= prev) {
        pool_->UnpinPage(current, /*dirty=*/false);
        return util::Status::Internal("leaf keys out of order");
      }
      prev = k;
      have_prev = true;
      ++counted;
    }
    pool_->UnpinPage(current, /*dirty=*/false);
    current = h.next_page;
  }
  if (counted != num_entries_) {
    return util::Status::Internal("entry count mismatch: tree walk found " +
                                  std::to_string(counted) + ", expected " +
                                  std::to_string(num_entries_));
  }
  return util::Status::Ok();
}

}  // namespace cdbtune::engine
