#ifndef CDBTUNE_SAFETY_APPLY_H_
#define CDBTUNE_SAFETY_APPLY_H_

#include "env/db_interface.h"
#include "knobs/registry.h"
#include "util/status.h"

namespace cdbtune::safety {

/// The one sanctioned deployment chokepoint: every config that reaches a
/// database outside the env backends themselves goes through here, so the
/// `unguarded-apply` lint rule can hold the rest of src/ to it. Guarded
/// sessions arrive with trust-region-clipped actions (GuardedPolicySource);
/// unguarded callers (offline training resets, baselines) still funnel
/// through so a future policy change has a single seam.
util::Status ApplyConfig(env::DbInterface& db, const knobs::Config& config);

}  // namespace cdbtune::safety

#endif  // CDBTUNE_SAFETY_APPLY_H_
