#!/usr/bin/env python3
"""Repo-specific lint for rules the compiler cannot enforce.

Rules
-----
ignored-status   A call to a util::Status / StatusOr-returning function whose
                 result is discarded — either a bare statement call or a
                 `(void)` cast laundering the [[nodiscard]] diagnostic away.
std-function     `std::function` in src/nn or src/util: type-erased calls in
                 kernel/utility hot paths cost an indirect call per invocation;
                 use templates or raw function pointers instead.
raw-new-delete   Raw `new` / `delete` outside the engine page layer
                 (src/engine/page.*) that is not immediately owned by a
                 unique_ptr (make_unique, unique_ptr<T>(new ...), .reset(new)).
mutable-global   Namespace-scope or function-local static mutable state with
                 no concurrency story (not const/constexpr/atomic/mutex/
                 once_flag/thread_local and no ComputeContext ownership).
blocking-socket  Raw socket syscalls (::socket/::connect/::accept/::recv/...)
                 or <sys/socket.h>/<sys/un.h> includes in src/ outside
                 src/server/io and src/server/net — the io::Socket wrapper
                 (blocking, AF_UNIX) and the net/ event-driven front end
                 (non-blocking, TCP) are the two sanctioned homes of socket
                 I/O, so shutdown semantics stay in audited places.
raw-checkpoint-write
                 `std::ofstream` (or <fstream> includes) in the model/replay
                 state trees (src/nn, src/rl, src/tuner, src/server) outside
                 src/persist — checkpoint bytes must go through
                 persist::AtomicWriteFile / ChunkWriter so every write is
                 checksummed, committed atomically, and torn-write safe.
raw-mutex        `std::mutex` / `std::condition_variable` / std lock guards
                 (or their includes) anywhere outside src/util/mutex.* — all
                 locking goes through util::Mutex / util::MutexLock /
                 util::CondVar so every lock carries thread-safety
                 annotations, a rank, and a name for deadlock reports.
naked-notify     A CondVar notify in a function that never visibly acquires
                 a lock (no MutexLock / Lock() / Wait() above it in the same
                 function body). Notifying without having mutated the
                 predicate's state under the mutex is the classic lost-wakeup
                 recipe; hoisted helpers that notify on behalf of a locked
                 caller annotate why they are safe.
atomic-ordering  An explicit std::memory_order_* argument. Relaxed/acquire/
                 release orderings are easy to get subtly wrong; each use
                 must carry an allow() stating why the weaker order is
                 sufficient (default seq_cst operations are untouched).
raw-intrinsics   An <immintrin.h>-family include or a raw SIMD token
                 (_mm*_* intrinsic, __m128/__m256/__m512 vector type,
                 __mmask*) outside src/nn/simd/. All SIMD lives in the
                 kernel subsystem behind the GemmKernels dispatch table so
                 the rest of the tree compiles portably and the bitwise
                 scalar-equivalence contract stays enforceable in one place.
unguarded-apply  A direct `db.ApplyConfig(...)` / `db->ApplyConfig(...)`
                 call in src/ outside src/safety (the chokepoint) and the
                 backend trees that implement the method (src/env,
                 src/engine). Every config deployment must route through
                 safety::ApplyConfig so the guardrail layer — trust-region
                 clipping, rollback-on-regression — can never be bypassed
                 by a new call site.

The determinism-contract rules (nondet-iteration, nondet-source,
float-contract, padding-serialize, pointer-order) live in the token/scope-
aware sibling tools/analyze.py, and the wire-schema rules (schema-asymmetry,
schema-unpaired, raw-schema, schema-unextractable) in tools/schema.py. The
first two tools share the suppression language below; schema.py uses the
same grammar under its own `schema:` marker. `--report-suppressions` audits
the annotations of all three.

Suppressions
------------
A finding is suppressed by an annotation naming its rule, with a reason:

    foo();  // lint: allow(rule-name) — why this is fine

on the offending line or the line directly above. A whole file opts out of a
rule with `// lint: allow-file(rule-name) — why` anywhere in the file. The
reason text is mandatory: a bare allow() without prose is itself a violation.

Modes
-----
(default)               lint SCAN_DIRS, print findings, exit 1 when dirty
--json                  machine-readable findings (CI turns these into
                        GitHub annotations); --include-suppressed adds the
                        suppressed ones, marked
--report-suppressions   the suppression-debt gate: list every allow()/
                        allow-file() across this tool, tools/analyze.py AND
                        tools/schema.py
                        with its reason, fail on bare suppressions, unknown
                        rule names, and stale suppressions (the annotation
                        no longer suppresses any finding), and print a
                        count trend line CI can surface

Exit status is 0 when clean, 1 when any violation is found, so the script can
gate CI (tools/run_checks.sh runs it before the sanitizer matrix).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import analyze  # noqa: E402  (sibling module: shared suppression framework)
import schema  # noqa: E402  (sibling: wire-schema gate, own allow() grammar)
from analyze import (  # noqa: E402
    AnalysisResult, Finding, SuppressionIndex, scan_annotations)

REPO_ROOT = Path(__file__).resolve().parent.parent

LINT_RULES = frozenset({
    "ignored-status", "std-function", "raw-new", "raw-delete",
    "mutable-global", "blocking-socket", "raw-checkpoint-write", "raw-mutex",
    "naked-notify", "atomic-ordering", "raw-intrinsics", "unguarded-apply",
})

# Directories scanned for violations. Tests and benches are held to the same
# Status discipline; the hot-path rules only apply inside src/ subtrees.
SCAN_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_SUFFIXES = {".h", ".cc"}

# Calls that return Status/StatusOr but whose results tests legitimately
# consume through other means are still required to check; there is no
# blanket exemption list — use a per-line annotation instead. Names that are
# ALSO declared with a non-Status return type somewhere (e.g. Lasso::Fit is
# void while GP::Fit returns Status) are dropped: this lint is line-based and
# cannot resolve receiver types, so ambiguous names would be false positives.
STATUS_DECL_RE = re.compile(
    r"(?:util::)?Status(?:Or<[^;=]*>)?\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w+)\s*\("
)
NONSTATUS_DECL_RE = re.compile(
    r"\b(void|bool|int|int64_t|uint64_t|size_t|double|float|auto|"
    r"std::\w[\w:]*(?:<[^;()]*>)?|[A-Z]\w*(?:<[^;()]*>)?)\s*[&*]?\s+"
    r"([A-Za-z_]\w+)\s*\("
)

# Statement-position call: optional receiver chain, then NAME(...);
BARE_CALL_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w+)\s*\("
)
VOID_CAST_RE = re.compile(r"\(void\)\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w+)\s*\(")
LAST_CALL_RE = re.compile(r"([A-Za-z_]\w+)\s*\([^()]*\)\s*;\s*$")
# A line whose predecessor ends mid-expression is a continuation; the result
# of a call there is consumed by the enclosing expression.
CONTINUATION_TAIL_RE = re.compile(r"(?:[=+\-*/%<>!&|^?:,(]|\breturn\b|<<|>>)\s*$")

STD_FUNCTION_RE = re.compile(r"\bstd::function\b")
RAW_NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(]")
OWNED_NEW_RE = re.compile(r"(?:unique_ptr<[^;]*\(\s*new\b|\.reset\(\s*new\b|make_unique)")
RAW_DELETE_RE = re.compile(r"\bdelete\b(?!\s*;?\s*$)|\bdelete\[\]")
DELETED_FN_RE = re.compile(r"=\s*delete\s*[;,)]")

SOCKET_CALL_RE = re.compile(
    r"::(?:socket|connect|accept4?|bind|listen|recv(?:from|msg)?|"
    r"send(?:to|msg)?)\s*\("
)
SOCKET_INCLUDE_RE = re.compile(r"#\s*include\s*<sys/(?:socket|un)\.h>")

OFSTREAM_RE = re.compile(r"\bstd::ofstream\b")
FSTREAM_INCLUDE_RE = re.compile(r"#\s*include\s*<fstream>")
# Subtrees whose serialized state is durable tuning state; raw file writes
# there bypass the persist layer's CRC + atomic-rename guarantees.
CHECKPOINT_STATE_DIRS = {"nn", "rl", "tuner", "server"}

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
)
MUTEX_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
NOTIFY_RE = re.compile(r"\b(?:NotifyOne|NotifyAll|notify_one|notify_all)\s*\(")
# Evidence that the enclosing function participates in the lock protocol:
# a scoped lock, an explicit Lock(), or a CondVar wait (which requires it).
LOCK_EVIDENCE_RE = re.compile(r"\bMutexLock\b|\bLock\s*\(\s*\)|\bWait\s*\(")
MEMORY_ORDER_RE = re.compile(r"\bstd::memory_order_\w+")

INTRINSIC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin|"
    r"tmmintrin|smmintrin|nmmintrin|wmmintrin|ammintrin|avxintrin|"
    r"avx2intrin|avx512\w*intrin|fmaintrin)\.h>"
)
INTRINSIC_TOKEN_RE = re.compile(
    r"\b(?:_mm(?:256|512)?_\w+|__m(?:128|256|512)[di]?\b|__mmask(?:8|16|32|64)\b)"
)

# Receiver-qualified ApplyConfig call (`db.ApplyConfig(` / `db->ApplyConfig(`).
# Declarations and overrides have no receiver and never match.
APPLY_CONFIG_RE = re.compile(r"(?:\.|->)\s*ApplyConfig\s*\(")
# Subtrees allowed to touch DbInterface::ApplyConfig directly: the safety
# chokepoint itself, and the backends that implement (and may self-delegate)
# the method.
APPLY_EXEMPT_DIRS = {"safety", "env", "engine"}

STATIC_DECL_RE = re.compile(r"^\s*static\s+(.*)$")
NAMESPACE_GLOBAL_RE = re.compile(r"^[A-Za-z_][\w:<>,&\s\*]*\bg_\w+\s*[{=;]")
SAFE_STATIC_RE = re.compile(
    r"const\b|constexpr\b|std::atomic|std::mutex|std::shared_mutex|"
    r"std::once_flag|std::condition_variable|thread_local\b|assert\s*\("
)


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals so the
    rule regexes never fire on prose or quoted code."""
    out = []
    i, n = 0, len(line)
    in_str = in_chr = False
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_str = False
            i += 1
            continue
        if in_chr:
            if c == "\\":
                i += 2
                continue
            if c == "'":
                in_chr = False
            i += 1
            continue
        if c == '"':
            in_str = True
            out.append('"')
            i += 1
            continue
        if c == "'":
            in_chr = True
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def collect_status_functions(files: list[Path]) -> set[str]:
    names: set[str] = set()
    ambiguous: set[str] = set()
    for path in files:
        if path.suffix != ".h":
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in STATUS_DECL_RE.finditer(text):
            names.add(match.group(1))
        for match in NONSTATUS_DECL_RE.finditer(text):
            if not match.group(1).startswith("Status"):
                ambiguous.add(match.group(2))
    # Accessors named like the type itself are not producers of new status.
    names.discard("Status")
    names.discard("status")
    names.discard("Ok")
    # Names also declared with non-Status return types are unresolvable on a
    # line-based scan; [[nodiscard]] + -Werror covers those at compile time.
    return names - ambiguous


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.result = AnalysisResult()

    def report(self, path: Path, idx: int, rule: str, message: str) -> None:
        """Records a finding for 0-based line `idx`, resolving suppressions
        so the debt gate can tell live annotations from stale ones."""
        ann = self._supp.lookup(rule, idx + 1)
        self.result.findings.append(Finding(
            path=path, line=idx + 1, rule=rule, message=message,
            suppressed=ann is not None, suppressor=ann))

    def lint_file(self, path: Path, status_fns: set[str]) -> None:
        rel = path.relative_to(self.root)
        text = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = text.splitlines()

        annotations = scan_annotations(path, raw_lines)
        self.result.annotations.extend(annotations)
        self._supp = SuppressionIndex(path, raw_lines, annotations)

        # First pass: strip block comments so rule regexes see code only.
        code_lines: list[str] = []
        in_block_comment = False
        for raw in raw_lines:
            line = raw
            if in_block_comment:
                end = line.find("*/")
                if end < 0:
                    code_lines.append("")
                    continue
                line = line[end + 2:]
                in_block_comment = False
            start = line.find("/*")
            if start >= 0 and "*/" not in line[start:]:
                in_block_comment = True
                line = line[:start]
            code_lines.append(strip_comments_and_strings(line))

        for idx, code in enumerate(code_lines):
            if not code.strip():
                continue
            prev = code_lines[idx - 1] if idx > 0 else ""

            self._check_ignored_status(path, rel, code, prev, idx, status_fns)
            self._check_std_function(path, rel, code, idx)
            self._check_raw_new_delete(path, rel, code, idx)
            self._check_mutable_global(path, rel, code, idx)
            self._check_blocking_socket(path, rel, code, idx)
            self._check_raw_checkpoint_write(path, rel, code, idx)
            self._check_raw_mutex(path, rel, code, idx)
            self._check_naked_notify(path, rel, code, code_lines, idx)
            self._check_atomic_ordering(path, rel, code, idx)
            self._check_raw_intrinsics(path, rel, code, idx)
            self._check_unguarded_apply(path, rel, code, idx)

    def _check_ignored_status(self, path, rel, code, prev, idx,
                              status_fns) -> None:
        void = VOID_CAST_RE.search(code)
        if void:
            last = LAST_CALL_RE.search(code)
            name = last.group(1) if last else void.group(1)
            if name in status_fns:
                self.report(path, idx, "ignored-status",
                            f"(void)-cast discards the Status returned by "
                            f"{name}(); handle it or annotate why not")
            return
        if not BARE_CALL_RE.match(code):
            return
        # If the previous line ends mid-expression this is a continuation, and
        # the enclosing expression consumes the result.
        if CONTINUATION_TAIL_RE.search(prev.rstrip()):
            return
        stripped = code.strip()
        # Only a full-statement call with nothing consuming the result. The
        # final call in a chain decides: `Get(k, out).value();` consumes the
        # StatusOr via value(), which itself checks.
        if not stripped.endswith(";"):
            return
        if re.search(r"=|\breturn\b|CDBTUNE_|EXPECT_|ASSERT_", code):
            return
        last = LAST_CALL_RE.search(code)
        if not last or last.group(1) not in status_fns:
            return
        self.report(path, idx, "ignored-status",
                    f"result of Status-returning {last.group(1)}() "
                    f"is discarded")

    def _check_std_function(self, path, rel, code, idx) -> None:
        top = rel.parts[0] if rel.parts else ""
        sub = rel.parts[1] if len(rel.parts) > 1 else ""
        if top != "src" or sub not in {"nn", "util"}:
            return
        if STD_FUNCTION_RE.search(code):
            self.report(path, idx, "std-function",
                        "std::function in a hot-path tree (src/nn, src/util); "
                        "use a template parameter or function pointer")

    def _check_raw_new_delete(self, path, rel, code, idx) -> None:
        if rel.parts[0] != "src":
            return
        if rel.name in ("page.h", "page.cc") and rel.parts[1] == "engine":
            return  # The page layer is the sanctioned raw-memory boundary.
        if RAW_NEW_RE.search(code) and not OWNED_NEW_RE.search(code):
            self.report(path, idx, "raw-new",
                        "raw new outside the engine page layer; wrap in "
                        "make_unique / unique_ptr immediately")
        if RAW_DELETE_RE.search(code) and not DELETED_FN_RE.search(code):
            self.report(path, idx, "raw-delete",
                        "raw delete outside the engine page layer")

    def _check_blocking_socket(self, path, rel, code, idx) -> None:
        if rel.parts[0] != "src":
            return
        if rel.parts[:3] in (("src", "server", "io"),
                             ("src", "server", "net")):
            return  # The sanctioned homes of raw socket I/O (io/ blocking
            # AF_UNIX, net/ non-blocking epoll TCP).
        if SOCKET_CALL_RE.search(code) or SOCKET_INCLUDE_RE.search(code):
            self.report(path, idx, "blocking-socket",
                        "blocking socket call/include outside src/server/io "
                        "or src/server/net; use server::io::Socket or the "
                        "net:: front end instead")

    def _check_raw_checkpoint_write(self, path, rel, code, idx) -> None:
        if rel.parts[0] != "src" or len(rel.parts) < 2:
            return
        if rel.parts[1] not in CHECKPOINT_STATE_DIRS:
            return
        if OFSTREAM_RE.search(code) or FSTREAM_INCLUDE_RE.search(code):
            self.report(path, idx, "raw-checkpoint-write",
                        "raw std::ofstream/<fstream> write of model or replay "
                        "state; route it through persist::AtomicWriteFile / "
                        "ChunkWriter (src/persist) so it is checksummed and "
                        "crash-atomic")

    @staticmethod
    def _is_mutex_home(rel: Path) -> bool:
        """src/util/mutex.{h,cc} is the one sanctioned home of the raw
        primitives — everything else goes through its wrappers."""
        return rel.parts[:2] == ("src", "util") and rel.name in (
            "mutex.h", "mutex.cc")

    def _check_raw_mutex(self, path, rel, code, idx) -> None:
        if self._is_mutex_home(rel):
            return
        if RAW_MUTEX_RE.search(code) or MUTEX_INCLUDE_RE.search(code):
            self.report(path, idx, "raw-mutex",
                        "raw std::mutex/condition_variable/lock outside "
                        "src/util/mutex.*; use util::Mutex / util::MutexLock "
                        "/ util::CondVar so the lock is annotated and ranked")

    def _check_naked_notify(self, path, rel, code, code_lines, idx) -> None:
        if rel.parts[0] != "src" or self._is_mutex_home(rel):
            return
        if not NOTIFY_RE.search(code):
            return
        # Walk back through the enclosing function body (clang-format style:
        # every function closes with a column-0 '}', so that brace bounds the
        # scan). Any scoped lock / Lock() / Wait() above the notify means the
        # function participates in the lock protocol and the notify is paired
        # with a guarded mutation.
        j = idx
        while j >= 0:
            line = code_lines[j]
            if j < idx and line.startswith("}"):
                break
            if LOCK_EVIDENCE_RE.search(line):
                return
            j -= 1
        self.report(path, idx, "naked-notify",
                    "notify with no lock acquisition in the enclosing "
                    "function; mutate the predicate state under the "
                    "mutex (or annotate why the caller holds it)")

    def _check_atomic_ordering(self, path, rel, code, idx) -> None:
        match = MEMORY_ORDER_RE.search(code)
        if match:
            self.report(path, idx, "atomic-ordering",
                        f"explicit {match.group(0)} — justify why a "
                        f"non-default memory order is correct here, or drop "
                        f"the argument for seq_cst")

    def _check_raw_intrinsics(self, path, rel, code, idx) -> None:
        if rel.parts[:3] == ("src", "nn", "simd"):
            return  # The sanctioned home of all SIMD intrinsics.
        if INTRINSIC_INCLUDE_RE.search(code) or INTRINSIC_TOKEN_RE.search(code):
            self.report(path, idx, "raw-intrinsics",
                        "raw SIMD intrinsic/include outside src/nn/simd/; "
                        "add a kernel to the GemmKernels dispatch table "
                        "instead so portability and the cross-tier bitwise "
                        "contract stay in one subsystem")

    def _check_unguarded_apply(self, path, rel, code, idx) -> None:
        if rel.parts[0] != "src" or len(rel.parts) < 2:
            return
        if rel.parts[1] in APPLY_EXEMPT_DIRS:
            return
        if APPLY_CONFIG_RE.search(code):
            self.report(path, idx, "unguarded-apply",
                        "direct DbInterface::ApplyConfig call outside "
                        "src/safety; route the deployment through "
                        "safety::ApplyConfig so the guardrail layer cannot "
                        "be bypassed")

    def _check_mutable_global(self, path, rel, code, idx) -> None:
        if rel.parts[0] != "src":
            return
        candidate = None
        static = STATIC_DECL_RE.match(code)
        if static:
            body = static.group(1)
            if SAFE_STATIC_RE.search(code):
                return
            # If the first '(' precedes any '=' or '{', this is a function
            # declaration/definition (e.g. `static Status Ok() { ... }`), not
            # a variable with an initializer.
            paren = body.find("(")
            eq = body.find("=")
            brace = body.find("{")
            if paren >= 0 and (eq < 0 or paren < eq) and (brace < 0 or paren < brace):
                return
            if eq < 0 and brace < 0 and not body.rstrip().endswith(";"):
                return
            candidate = body.strip()
        else:
            glob = NAMESPACE_GLOBAL_RE.match(code)
            if glob and not SAFE_STATIC_RE.search(code):
                candidate = code.strip()
        if candidate:
            self.report(path, idx, "mutable-global",
                        "mutable static/global without a concurrency story "
                        "(const/atomic/mutex/thread_local) — document one "
                        "via annotation or fix the type")


def lint_tree(root: Path,
              paths: list[str] | None = None
              ) -> tuple[AnalysisResult, set[str]]:
    if paths:
        roots = [Path(p).resolve() for p in paths]
    else:
        roots = [root / d for d in SCAN_DIRS]
    files: list[Path] = []
    for scan_root in roots:
        if scan_root.is_file():
            files.append(scan_root)
        elif scan_root.is_dir():
            files.extend(p for p in sorted(scan_root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)

    status_fns = collect_status_functions(
        [p for p in (root / "src").rglob("*.h")])

    linter = Linter(root)
    for path in files:
        linter.lint_file(path, status_fns)
    linter.result.files_scanned = len(files)

    # A bare allow()/allow-file() naming a lint rule is itself a violation
    # (analyze.py owns the same check for its rules).
    for ann in linter.result.annotations:
        if not ann.has_reason and any(r in LINT_RULES for r in ann.rules):
            linter.result.findings.append(Finding(
                path=ann.path, line=ann.line, rule="lint-annotation",
                message=f"{ann.kind}() without a reason"))
    return linter.result, status_fns


def report_suppressions(root: Path) -> int:
    """The suppression-debt gate: every annotation across lint.py,
    analyze.py AND schema.py must carry a reason, name only existing rules,
    and still suppress at least one finding per named rule. Prints the full
    debt ledger plus a trend line, exits non-zero on any debt violation."""
    lint_result, _ = lint_tree(root)
    analyze_result = analyze.analyze_tree(root)
    schema_result = schema.scan_tree(root)

    known_rules = LINT_RULES | analyze.RULES | schema.RULES

    # Live (annotation, rule) pairs: an annotation that actually discharged
    # a finding in one of the tools.
    live: set[tuple[Path, int, str]] = set()
    for result in (lint_result, analyze_result, schema_result):
        for f in result.findings:
            if f.suppressed and f.suppressor is not None:
                live.add((f.suppressor.path, f.suppressor.line, f.rule))

    # The tools scan overlapping files; dedupe annotations by position.
    seen: set[tuple[Path, int]] = set()
    annotations = []
    for result in (lint_result, analyze_result, schema_result):
        for ann in result.annotations:
            key = (ann.path, ann.line)
            if key not in seen:
                seen.add(key)
                annotations.append(ann)
    annotations.sort(key=lambda a: (str(a.path), a.line))

    problems: list[str] = []
    file_level = 0
    rules_suppressed = 0
    for ann in annotations:
        rel = ann.path.relative_to(root) if ann.path.is_relative_to(root) \
            else ann.path
        where = f"{rel}:{ann.line}"
        if ann.kind == "allow-file":
            file_level += 1
        statuses = []
        for rule in ann.rules:
            if rule not in known_rules:
                statuses.append(f"{rule}: UNKNOWN RULE")
                problems.append(f"{where}: allow({rule}) names a rule no "
                                f"tool defines")
                continue
            if (ann.path, ann.line, rule) in live:
                statuses.append(f"{rule}: live")
                rules_suppressed += 1
            else:
                statuses.append(f"{rule}: STALE")
                problems.append(f"{where}: {ann.kind}({rule}) suppresses "
                                f"nothing — the finding moved or was fixed; "
                                f"delete the annotation")
        if not ann.has_reason:
            problems.append(f"{where}: {ann.kind}() without a reason")
        reason = "ok" if ann.has_reason else "MISSING REASON"
        print(f"{where}: [{ann.kind}] {', '.join(statuses)} (reason: {reason})")
        print(f"    {ann.text}")

    files = len({a.path for a in annotations})
    # The trend line: one grep-able record per run so CI can chart debt.
    print(f"\nsuppression-debt: annotations={len(annotations)} "
          f"rules-suppressed={rules_suppressed} file-level={file_level} "
          f"files={files} problems={len(problems)}")
    if problems:
        print("\nsuppression-debt gate FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: repo)")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree root the dir-gated rules are resolved "
                             "against (tools/lint_selftest.py points this at "
                             "a fixture tree so fixture files under "
                             "<root>/src lint exactly like src/)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON (for CI annotations)")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="with --json, include suppressed findings")
    parser.add_argument("--report-suppressions", action="store_true",
                        help="audit every allow()/allow-file() across lint "
                             "and analyze: reasons, unknown rules, staleness")
    args = parser.parse_args()
    repo_root = args.root.resolve()

    if args.report_suppressions:
        return report_suppressions(repo_root)

    result, status_fns = lint_tree(repo_root, args.paths)
    active = result.active()

    if args.json:
        findings = result.findings if args.include_suppressed else active
        payload = {
            "tool": "lint",
            "root": str(repo_root),
            "files_scanned": result.files_scanned,
            "findings": [{
                "file": analyze.rel_str(f.path, repo_root),
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
                "suppressed": f.suppressed,
            } for f in findings],
            "counts": {},
            "suppressed_count": sum(1 for f in result.findings
                                    if f.suppressed),
        }
        for f in active:
            payload["counts"][f.rule] = payload["counts"].get(f.rule, 0) + 1
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 1 if active else 0

    for f in active:
        print(f"{analyze.rel_str(f.path, repo_root)}:{f.line}: "
              f"[{f.rule}] {f.message}")
    if active:
        print(f"\nlint: {len(active)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: clean ({result.files_scanned} files, "
          f"{len(status_fns)} Status-returning functions tracked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
