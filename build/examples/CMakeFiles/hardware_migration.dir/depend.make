# Empty dependencies file for hardware_migration.
# This may be replaced when dependencies are built.
