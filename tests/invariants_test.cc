// Proves the correctness substrate actually bites: CDBTUNE_CHECK aborts
// with a useful message, and each deep validator rejects a deliberately
// corrupted structure that shallow accounting would miss.

#include <cstring>

#include "gtest/gtest.h"
#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/disk_manager.h"
#include "engine/page.h"
#include "engine/wal.h"
#include "rl/replay.h"
#include "util/check.h"
#include "util/random.h"

namespace cdbtune {
namespace {

// --- CDBTUNE_CHECK death tests -------------------------------------------

TEST(CheckMacroDeathTest, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(CDBTUNE_CHECK(1 == 2) << "extra context",
               "Check failed: 1 == 2.*extra context");
}

TEST(CheckMacroDeathTest, CheckEqPrintsBothOperands) {
  int lhs = 4;
  int rhs = 5;
  EXPECT_DEATH(CDBTUNE_CHECK_EQ(lhs, rhs), "Check failed: lhs == rhs \\(4 vs 5\\)");
}

TEST(CheckMacroDeathTest, CheckOkPrintsStatusMessage) {
  EXPECT_DEATH(CDBTUNE_CHECK_OK(util::Status::Internal("sum tree is toast")),
               "sum tree is toast");
}

TEST(CheckMacroTest, PassingChecksAreSilent) {
  CDBTUNE_CHECK(true) << "never streamed";
  CDBTUNE_CHECK_EQ(2 + 2, 4);
  CDBTUNE_CHECK_OK(util::Status::Ok());
}

TEST(CheckMacroTest, BinaryCheckEvaluatesOperandsOnce) {
  int evaluations = 0;
  CDBTUNE_CHECK_EQ(++evaluations, 1);
  EXPECT_EQ(evaluations, 1);
}

#if CDBTUNE_DCHECK_ENABLED
TEST(CheckMacroDeathTest, DcheckFiresWhenEnabled) {
  EXPECT_DEATH(CDBTUNE_DCHECK(false) << "debug-only", "Check failed: false");
}
#else
TEST(CheckMacroTest, DcheckDoesNotEvaluateWhenDisabled) {
  int evaluations = 0;
  CDBTUNE_DCHECK_EQ(++evaluations, 12345);
  EXPECT_EQ(evaluations, 0);
}
#endif

// --- PrioritizedReplay sum-tree validator --------------------------------

rl::Transition MakeTransition(double reward) {
  rl::Transition t;
  t.state = {0.1, 0.2};
  t.action = {0.3};
  t.reward = reward;
  t.next_state = {0.4, 0.5};
  return t;
}

TEST(ReplayInvariantsTest, CleanBufferPasses) {
  rl::PrioritizedReplay replay(8);
  for (int i = 0; i < 5; ++i) replay.Add(MakeTransition(i));
  EXPECT_TRUE(replay.CheckInvariants().ok());
}

TEST(ReplayInvariantsTest, CorruptedInternalNodeIsCaught) {
  rl::PrioritizedReplay replay(8);
  for (int i = 0; i < 5; ++i) replay.Add(MakeTransition(i));
  ASSERT_TRUE(replay.CheckInvariants().ok());
  // Node 1 is the root: its value must equal the sum of its children.
  replay.CorruptTreeNodeForTest(1, replay.TotalPriority() + 7.0);
  util::Status status = replay.CheckInvariants();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sum of its children"), std::string::npos);
}

TEST(ReplayInvariantsTest, NegativeLeafIsCaught) {
  rl::PrioritizedReplay replay(8);
  for (int i = 0; i < 5; ++i) replay.Add(MakeTransition(i));
  // Leaves start at index 8 in a capacity-8 (leaf_base 8) tree.
  replay.CorruptTreeNodeForTest(8 + 2, -1.0);
  EXPECT_FALSE(replay.CheckInvariants().ok());
}

TEST(ReplayInvariantsTest, NonZeroUnwrittenLeafIsCaught) {
  rl::PrioritizedReplay replay(8);
  for (int i = 0; i < 3; ++i) replay.Add(MakeTransition(i));
  // Slot 6 has never been written; a stray priority there would skew
  // sampling toward garbage items.
  replay.CorruptTreeNodeForTest(8 + 6, 0.5);
  EXPECT_FALSE(replay.CheckInvariants().ok());
}

// --- BufferPool validator -------------------------------------------------

class PoolInvariantsTest : public ::testing::Test {
 protected:
  PoolInvariantsTest()
      : disk_(&clock_, env::DiskType::kSsd, 10 * 1024 * 1024),
        pool_(&disk_, &clock_, 8) {}

  engine::VirtualClock clock_;
  engine::DiskManager disk_;
  engine::BufferPool pool_;
};

TEST_F(PoolInvariantsTest, CleanPoolPasses) {
  engine::PageId id = disk_.AllocatePage().value();
  ASSERT_TRUE(pool_.FetchPage(id).ok());
  pool_.UnpinPage(id, /*dirty=*/false);
  EXPECT_TRUE(pool_.CheckInvariants().ok());
}

TEST_F(PoolInvariantsTest, UnbalancedPinCountIsCaught) {
  engine::PageId id = disk_.AllocatePage().value();
  ASSERT_TRUE(pool_.FetchPage(id).ok());
  pool_.UnpinPage(id, /*dirty=*/false);
  ASSERT_TRUE(pool_.CheckInvariants().ok());
  // A pinned page sitting on the LRU list could be evicted while a caller
  // still holds its pointer — exactly the class of bug the validator exists
  // to catch before it becomes a use-after-free.
  pool_.CorruptPinCountForTest(id, +1);
  EXPECT_FALSE(pool_.CheckInvariants().ok());
  pool_.CorruptPinCountForTest(id, -1);
  EXPECT_TRUE(pool_.CheckInvariants().ok());
}

TEST_F(PoolInvariantsTest, NegativePinCountIsCaught) {
  engine::PageId id = disk_.AllocatePage().value();
  ASSERT_TRUE(pool_.FetchPage(id).ok());
  pool_.UnpinPage(id, /*dirty=*/false);
  pool_.CorruptPinCountForTest(id, -1);
  EXPECT_FALSE(pool_.CheckInvariants().ok());
}

// --- BTree validator ------------------------------------------------------

TEST(BTreeInvariantsTest, BrokenKeyOrderIsCaught) {
  engine::VirtualClock clock;
  engine::DiskManager disk(&clock, env::DiskType::kSsd, 10 * 1024 * 1024);
  engine::BufferPool pool(&disk, &clock, 16);
  auto tree = engine::BTree::Create(&pool).value();

  char payload[engine::kRecordPayload];
  std::memset(payload, 0x11, sizeof(payload));
  for (uint64_t key = 1; key <= 8; ++key) {
    ASSERT_TRUE(tree->Insert(key, payload).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());

  // Swap the first two keys of the root leaf behind the tree's back —
  // the kind of damage a buggy split or shift would cause.
  engine::Page* root = pool.FetchPage(tree->root()).value();
  uint64_t k0 = root->LeafKey(0);
  uint64_t k1 = root->LeafKey(1);
  char p0[engine::kRecordPayload];
  char p1[engine::kRecordPayload];
  uint64_t ignored;
  root->LeafEntry(0, &ignored, p0);
  root->LeafEntry(1, &ignored, p1);
  root->SetLeafEntry(0, k1, p1);
  root->SetLeafEntry(1, k0, p0);
  pool.UnpinPage(tree->root(), /*dirty=*/true);

  util::Status status = tree->Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("order"), std::string::npos);
}

TEST(BTreeInvariantsTest, MultiLevelTreeValidates) {
  engine::VirtualClock clock;
  engine::DiskManager disk(&clock, env::DiskType::kSsd, 50 * 1024 * 1024);
  engine::BufferPool pool(&disk, &clock, 64);
  auto tree = engine::BTree::Create(&pool).value();

  char payload[engine::kRecordPayload];
  std::memset(payload, 0x22, sizeof(payload));
  util::Rng rng(7);
  // Enough keys to force splits (leaf capacity is kPayloadSize / 112).
  for (int i = 0; i < 500; ++i) {
    uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 1 << 20));
    ASSERT_TRUE(tree->Insert(key, payload).ok());
  }
  ASSERT_GT(tree->height(), 1u);
  EXPECT_TRUE(tree->Validate().ok());
}

// --- WAL validator --------------------------------------------------------

TEST(WalInvariantsTest, LsnChainStaysMonotone) {
  engine::VirtualClock clock;
  engine::DiskManager disk(&clock, env::DiskType::kSsd, 100 * 1024 * 1024);
  auto wal = engine::Wal::Create(&disk, &clock, {}).value();

  char payload[engine::kRecordPayload];
  std::memset(payload, 0x33, sizeof(payload));
  uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    uint64_t lsn = wal->AppendRecord(/*key=*/i, /*is_insert=*/true, payload,
                                     /*bytes=*/256);
    EXPECT_GT(lsn, prev);
    prev = lsn;
  }
  wal->Commit();
  EXPECT_TRUE(wal->CheckInvariants().ok());
  EXPECT_LE(wal->checkpoint_lsn(), wal->durable_lsn());
  EXPECT_LE(wal->durable_lsn(), wal->lsn());
}

}  // namespace
}  // namespace cdbtune
