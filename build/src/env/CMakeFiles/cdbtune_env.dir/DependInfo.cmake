
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/instance.cc" "src/env/CMakeFiles/cdbtune_env.dir/instance.cc.o" "gcc" "src/env/CMakeFiles/cdbtune_env.dir/instance.cc.o.d"
  "/root/repo/src/env/metrics.cc" "src/env/CMakeFiles/cdbtune_env.dir/metrics.cc.o" "gcc" "src/env/CMakeFiles/cdbtune_env.dir/metrics.cc.o.d"
  "/root/repo/src/env/perf_model.cc" "src/env/CMakeFiles/cdbtune_env.dir/perf_model.cc.o" "gcc" "src/env/CMakeFiles/cdbtune_env.dir/perf_model.cc.o.d"
  "/root/repo/src/env/simulated_cdb.cc" "src/env/CMakeFiles/cdbtune_env.dir/simulated_cdb.cc.o" "gcc" "src/env/CMakeFiles/cdbtune_env.dir/simulated_cdb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cdbtune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/knobs/CMakeFiles/cdbtune_knobs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdbtune_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
