// Reproduces Figure 6: performance as the number of tuned knobs grows from
// 20 to 266, with the knobs sorted by the DBA's importance ranking. All
// contenders tune the same first-N knobs; the rest stay at defaults.
//
// Expected shape (paper): CDBTune best at every count and still improving
// (or flat) at 266; DBA and OtterTune peak somewhere in the middle and
// degrade as the unseen dependencies of the long tail defeat rules and GP
// regression ("the performance of DBA and OtterTune begins to decrease
// after their recommended knobs exceed a certain number").
#include "bench_common.h"
#include "baselines/dba.h"

int main() {
  using namespace cdbtune;
  bench::Budgets budgets;
  budgets.cdbtune_offline_steps = 600;  // Per-count budget; 8 counts total.
  budgets.seed = 61;
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  std::vector<size_t> order = baselines::DbaTuner::ImportanceOrder(reg);
  bench::RunKnobCountSweep(
      "Figure 6: TPC-C on CDB-B, knobs sorted by DBA importance",
      workload::Tpcc(), env::CdbB(), order, {20, 40, 80, 120, 160, 200, 266},
      budgets);
  return 0;
}
