// Clean twin of bad_schema.cc: the same shapes, each discharged with a
// reasoned `schema: allow(...)` annotation. lint_selftest.py proves the
// suppressions are honored (zero active findings, each visible under
// --include-suppressed). Never compiled — scanned only.
#include <cstdint>
#include <string>

namespace cdbtune::rl {

struct PackedState {
  double gain;
  double bias;
};

void SaveCounterBinary(persist::Encoder& enc, const PackedState& s) {
  enc.WriteDouble(s.gain);
  // schema: allow(schema-asymmetry) — v1 files wrote i64; the reader widens
  // to u64 on purpose and rejects negatives itself (fixture).
  enc.WriteI64(ticks_);
  // schema: allow(raw-schema) — PackedState is static_asserted to be two
  // packed doubles with no padding; raw append is the documented fast path
  // (fixture).
  enc.AppendRaw(&s, sizeof(s));
}

util::Status LoadCounterBinary(persist::Decoder& dec, PackedState* s) {
  uint64_t ticks = 0;
  if (!dec.ReadDouble(&s->gain) || !dec.ReadU64(&ticks)) return dec.status();
  return util::Status::Ok();
}

// schema: allow(schema-unpaired) — the decoder lives in a sibling repo that
// consumes this export feed; symmetry is covered by its conformance suite
// (fixture).
void SaveOrphanBinary(persist::Encoder& enc) {
  enc.WriteU32(7);
}

void SaveDynamicBinary(persist::Encoder& enc, const PackedState& s) {
  enc.WriteDouble(s.bias);
  // schema: allow(schema-unextractable) — FlushMystery appends nothing; it
  // only pokes instrumentation counters (fixture).
  enc.FlushMystery(s);
}

util::Status LoadDynamicBinary(persist::Decoder& dec, PackedState* s) {
  if (!dec.ReadDouble(&s->bias)) return dec.status();
  return util::Status::Ok();
}

}  // namespace cdbtune::rl
