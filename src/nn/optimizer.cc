#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace cdbtune::nn {

void Optimizer::ClipGradNorm(double max_norm) {
  CDBTUNE_CHECK(max_norm > 0.0) << "max_norm must be positive";
  double sq = 0.0;
  for (Parameter* p : params_) {
    const double* g = p->grad.data();
    const size_t n = p->grad.size();
    for (size_t i = 0; i < n; ++i) sq += g[i] * g[i];
  }
  double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  double scale = max_norm / norm;
  for (Parameter* p : params_) p->grad.Scale(scale);
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  learning_rate_ = learning_rate;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    double* __restrict__ value = params_[i]->value.data();
    const double* __restrict__ grad = params_[i]->grad.data();
    double* __restrict__ vel = velocity_[i].data();
    const size_t n = params_[i]->value.size();
    for (size_t j = 0; j < n; ++j) {
      const double v = momentum_ * vel[j] - learning_rate_ * grad[j];
      vel[j] = v;
      value[j] += v;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate, double beta1,
           double beta2, double epsilon)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  learning_rate_ = learning_rate;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++step_;
  // Bias corrections hoisted to reciprocal multiplies: the loop body keeps
  // one sqrt and one divide per element, which GCC turns into packed
  // sqrtpd/divpd over the flat buffers.
  const double inv_bc1 = 1.0 / (1.0 - std::pow(beta1_, static_cast<double>(step_)));
  const double inv_bc2 = 1.0 / (1.0 - std::pow(beta2_, static_cast<double>(step_)));
  const double one_minus_b1 = 1.0 - beta1_;
  const double one_minus_b2 = 1.0 - beta2_;
  for (size_t i = 0; i < params_.size(); ++i) {
    double* __restrict__ value = params_[i]->value.data();
    const double* __restrict__ grad = params_[i]->grad.data();
    double* __restrict__ m = m_[i].data();
    double* __restrict__ v = v_[i].data();
    const size_t n = params_[i]->value.size();
    for (size_t j = 0; j < n; ++j) {
      const double g = grad[j];
      m[j] = beta1_ * m[j] + one_minus_b1 * g;
      v[j] = beta2_ * v[j] + one_minus_b2 * g * g;
      const double m_hat = m[j] * inv_bc1;
      const double v_hat = v[j] * inv_bc2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace cdbtune::nn
