# Empty compiler generated dependencies file for cdbtune_rl.
# This may be replaced when dependencies are built.
