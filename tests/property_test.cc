// Property-style sweeps over the cross-products the unit tests sample only
// pointwise: the performance model over every (workload, hardware, device)
// combination, the reward function over a delta grid, engine behaviour
// under randomized operation streams, and serialization round trips across
// network shapes.
#include <cmath>
#include <sstream>

#include "gtest/gtest.h"
#include "engine/mini_cdb.h"
#include "env/simulated_cdb.h"
#include "rl/ddpg.h"
#include "tuner/reward.h"

namespace cdbtune {
namespace {

// --- Performance-model invariants over the full grid -------------------------

struct ModelCase {
  workload::WorkloadType workload;
  double ram_gb;
  double disk_gb;
  env::DiskType disk;
};

class PerfModelGridTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(PerfModelGridTest, OutcomeInvariants) {
  ModelCase c = GetParam();
  auto hw = env::MakeInstance("grid", c.ram_gb, c.disk_gb, c.disk);
  auto db = env::SimulatedCdb::MysqlCdb(hw);
  auto spec = workload::MakeWorkload(c.workload);
  const auto& reg = db->registry();

  util::Rng rng(1234);
  for (int trial = 0; trial < 15; ++trial) {
    knobs::Config config = reg.DefaultConfig();
    // Random but *startable* configurations: respect the crash rules via
    // ApplyConfig and skip rejected draws.
    for (size_t i = 0; i < reg.size(); ++i) {
      config[i] = knobs::DenormalizeKnobValue(reg.def(i), rng.Uniform());
    }
    if (!db->ApplyConfig(config).ok()) continue;
    env::PerfOutcome out = db->EvaluateNoiseless(config, spec);

    EXPECT_GT(out.throughput_tps, 0.0);
    EXPECT_TRUE(std::isfinite(out.throughput_tps));
    EXPECT_GT(out.latency_mean_ms, 0.0);
    EXPECT_GE(out.latency_p99_ms, out.latency_mean_ms);
    EXPECT_GE(out.buffer_hit_rate, 0.0);
    EXPECT_LE(out.buffer_hit_rate, 1.0);
    EXPECT_GE(out.swap_penalty, 1.0);
    EXPECT_GE(out.checkpoint_penalty, 1.0);
    EXPECT_GE(out.lock_contention, 0.0);
    EXPECT_LT(out.lock_contention, 1.0);
    EXPECT_GE(out.physical_read_rate, 0.0);
    EXPECT_GE(out.page_flush_rate, 0.0);
    // Little's law consistency: mean latency ~ clients / throughput.
    double expected_mean =
        spec.client_threads * 0.8 * 1000.0 / out.throughput_tps;
    EXPECT_NEAR(out.latency_mean_ms, expected_mean, expected_mean * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfModelGridTest,
    ::testing::Values(
        ModelCase{workload::WorkloadType::kSysbenchReadWrite, 8, 100,
                  env::DiskType::kSsd},
        ModelCase{workload::WorkloadType::kSysbenchReadOnly, 4, 32,
                  env::DiskType::kHdd},
        ModelCase{workload::WorkloadType::kSysbenchWriteOnly, 12, 200,
                  env::DiskType::kNvm},
        ModelCase{workload::WorkloadType::kTpcc, 16, 200,
                  env::DiskType::kSsd},
        ModelCase{workload::WorkloadType::kTpch, 32, 300,
                  env::DiskType::kHdd},
        ModelCase{workload::WorkloadType::kYcsb, 128, 512,
                  env::DiskType::kNvm}));

// All engine profiles obey the same invariants under their own catalogs.
class ProfileGridTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfileGridTest, RandomConfigsStayFinite) {
  std::unique_ptr<env::SimulatedCdb> db;
  workload::WorkloadSpec spec = workload::Tpcc();
  switch (GetParam()) {
    case 0:
      db = env::SimulatedCdb::MysqlCdb(env::CdbB());
      break;
    case 1:
      db = env::SimulatedCdb::Postgres(env::CdbD());
      break;
    case 2:
      db = env::SimulatedCdb::Mongo(env::CdbE());
      spec = workload::Ycsb();
      break;
    default:
      db = env::SimulatedCdb::LocalMysql(env::CdbC());
      break;
  }
  const auto& reg = db->registry();
  util::Rng rng(77);
  int started = 0;
  for (int trial = 0; trial < 25; ++trial) {
    knobs::Config config = reg.DefaultConfig();
    for (size_t i = 0; i < reg.size(); ++i) {
      config[i] = knobs::DenormalizeKnobValue(reg.def(i), rng.Uniform());
    }
    if (!db->ApplyConfig(config).ok()) continue;
    ++started;
    auto result = db->RunStress(spec, 150.0);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().external.throughput_tps, 0.0);
    EXPECT_TRUE(std::isfinite(result.value().external.latency_p99_ms));
  }
  EXPECT_GT(started, 5);  // Most random configs must be startable.
}

INSTANTIATE_TEST_SUITE_P(Engines, ProfileGridTest, ::testing::Values(0, 1, 2, 3));

// --- Reward function over a delta grid -----------------------------------------

struct RewardCase {
  double d0;
  double dp;
};

class RewardGridTest : public ::testing::TestWithParam<RewardCase> {};

TEST_P(RewardGridTest, SignTracksOverallProgress) {
  RewardCase c = GetParam();
  for (bool clamp : {false, true}) {
    double r = tuner::RewardFunction::MetricReward(c.d0, c.dp, clamp);
    EXPECT_TRUE(std::isfinite(r));
    if (c.d0 > 0.0) {
      // Positive overall progress never yields a negative reward; the clamp
      // rule can only zero it.
      EXPECT_GE(r, 0.0);
      if (clamp && c.dp < 0.0) {
        EXPECT_DOUBLE_EQ(r, 0.0);
      }
    } else if (c.d0 < 0.0) {
      EXPECT_LE(r, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeltaGrid, RewardGridTest,
    ::testing::Values(RewardCase{0.5, 0.5}, RewardCase{0.5, -0.5},
                      RewardCase{0.5, 0.0}, RewardCase{-0.5, 0.5},
                      RewardCase{-0.5, -0.5}, RewardCase{0.0, 0.3},
                      RewardCase{2.0, 1.0}, RewardCase{-0.9, -0.9},
                      RewardCase{0.01, -0.01}, RewardCase{-0.01, 0.01}));

TEST(RewardMonotonicityTest, LargerGainsGetLargerRewards) {
  // With equal step-over-step change, the reward grows with overall gain.
  double prev = 0.0;
  for (double d0 : {0.1, 0.3, 0.6, 1.0, 2.0}) {
    double r = tuner::RewardFunction::MetricReward(d0, 0.1, true);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

// --- Mini engine under randomized mixed operations -------------------------------

struct EngineCase {
  uint64_t seed;
  size_t frames;
};

class MiniEngineRandomOpsTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(MiniEngineRandomOpsTest, TreeStaysConsistentUnderPressure) {
  EngineCase c = GetParam();
  engine::VirtualClock clock;
  engine::DiskManager disk(&clock, env::DiskType::kSsd,
                           200000ull * engine::kPageSize);
  engine::BufferPool pool(&disk, &clock, c.frames);
  auto tree = engine::BTree::Create(&pool).value();

  util::Rng rng(c.seed);
  char payload[engine::kRecordPayload] = {};
  std::set<uint64_t> inserted;
  for (int op = 0; op < 4000; ++op) {
    double roll = rng.Uniform();
    if (roll < 0.5 || inserted.empty()) {
      uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 100000));
      payload[0] = static_cast<char>(key & 0x7F);
      ASSERT_TRUE(tree->Insert(key, payload).ok());
      inserted.insert(key);
    } else if (roll < 0.75) {
      uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 100000));
      auto found = tree->Get(key, nullptr);
      ASSERT_TRUE(found.ok());
      EXPECT_EQ(found.value(), inserted.count(key) > 0) << key;
    } else {
      uint64_t start = static_cast<uint64_t>(rng.UniformInt(0, 100000));
      ASSERT_TRUE(tree->Scan(start, 50).ok());
    }
  }
  EXPECT_EQ(tree->num_entries(), inserted.size());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // Nothing stays pinned after the workload.
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Resize(c.frames).ok());  // Would fail if pages were pinned.
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Patterns, MiniEngineRandomOpsTest,
                         ::testing::Values(EngineCase{1, 8},
                                           EngineCase{2, 64},
                                           EngineCase{3, 512},
                                           EngineCase{4, 16}));

// --- DDPG serialization across architectures -------------------------------------

class DdpgShapeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(DdpgShapeTest, SaveLoadPreservesPolicyForAnyShape) {
  auto [state_dim, action_dim] = GetParam();
  rl::DdpgOptions o;
  o.state_dim = state_dim;
  o.action_dim = action_dim;
  o.actor_hidden = {32, 16};
  o.critic_embed = 16;
  o.critic_hidden = {16};
  o.batch_size = 4;
  rl::DdpgAgent agent(o);
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    rl::Transition t;
    t.state.resize(state_dim);
    t.action.resize(action_dim, 0.5);
    t.next_state.resize(state_dim);
    for (double& v : t.state) v = rng.Gaussian();
    for (double& v : t.next_state) v = rng.Gaussian();
    t.reward = rng.Gaussian();
    agent.Observe(std::move(t));
  }
  for (int i = 0; i < 3; ++i) agent.TrainStep();

  std::string prefix = ::testing::TempDir() + "/ddpg_shape_" +
                       std::to_string(state_dim) + "_" +
                       std::to_string(action_dim);
  ASSERT_TRUE(agent.Save(prefix).ok());
  rl::DdpgAgent restored(o);
  ASSERT_TRUE(restored.Load(prefix).ok());
  std::vector<double> probe(state_dim, 0.3);
  EXPECT_EQ(agent.SelectAction(probe, false),
            restored.SelectAction(probe, false));
}

INSTANTIATE_TEST_SUITE_P(Shapes, DdpgShapeTest,
                         ::testing::Values(std::make_pair(4ul, 2ul),
                                           std::make_pair(63ul, 16ul),
                                           std::make_pair(63ul, 266ul),
                                           std::make_pair(10ul, 169ul)));

// --- Knob space prefix/action consistency across counts ----------------------------

class KnobPrefixTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KnobPrefixTest, PrefixSpacesAreNestedAndConsistent) {
  size_t count = GetParam();
  knobs::KnobRegistry reg = knobs::BuildMysqlCatalog();
  auto order = reg.TunableIndices();
  auto space = knobs::KnobSpace::FromOrderPrefix(&reg, order, count);
  EXPECT_EQ(space.action_dim(), count);

  knobs::Config base = reg.DefaultConfig();
  std::vector<double> action(count);
  util::Rng rng(count);
  for (double& a : action) a = rng.Uniform();
  knobs::Config config = space.ActionToConfig(action, base);
  // Knobs beyond the prefix are untouched.
  for (size_t i = count; i < order.size(); ++i) {
    EXPECT_DOUBLE_EQ(config[order[i]], base[order[i]]);
  }
  // Round trip through the space reproduces the active values.
  auto recovered = space.ConfigToAction(config);
  knobs::Config config2 = space.ActionToConfig(recovered, base);
  EXPECT_EQ(config, config2);
}

INSTANTIATE_TEST_SUITE_P(Counts, KnobPrefixTest,
                         ::testing::Values(1, 20, 65, 130, 266));

}  // namespace
}  // namespace cdbtune
