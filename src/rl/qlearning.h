#ifndef CDBTUNE_RL_QLEARNING_H_
#define CDBTUNE_RL_QLEARNING_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace cdbtune::rl {

/// Classic tabular Q-learning (Section 3.3, Eq. 1).
///
/// Included as the paper's didactic baseline: it only works when both state
/// and action spaces are small and discrete, which is exactly why it cannot
/// tune 63 continuous metrics x 266 continuous knobs (the paper's 100^63
/// state-count argument). The benchmarks use it on a deliberately tiny
/// discretized sub-problem.
class QLearningAgent {
 public:
  QLearningAgent(size_t num_states, size_t num_actions, double alpha,
                 double gamma, double epsilon, uint64_t seed = 13);

  /// Epsilon-greedy over the Q-table row for `state`.
  size_t SelectAction(size_t state, bool explore);

  /// Bellman update:
  /// Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a)).
  void Update(size_t state, size_t action, double reward, size_t next_state,
              bool terminal);

  double q(size_t state, size_t action) const;
  size_t num_states() const { return num_states_; }
  size_t num_actions() const { return num_actions_; }

  void DecayEpsilon(double factor, double floor);
  double epsilon() const { return epsilon_; }

 private:
  size_t num_states_;
  size_t num_actions_;
  double alpha_;
  double gamma_;
  double epsilon_;
  util::Rng rng_;
  std::vector<double> table_;  // num_states x num_actions, row-major.
};

/// Uniform grid discretizer mapping a continuous vector in [0,1]^dim to a
/// single table index with `bins` cells per dimension. Table size grows as
/// bins^dim — the combinatorial explosion the paper describes.
class GridDiscretizer {
 public:
  GridDiscretizer(size_t dim, size_t bins);

  size_t NumCells() const;
  size_t Encode(const std::vector<double>& x) const;
  /// Center of the cell `index`, for inverse mapping.
  std::vector<double> Decode(size_t index) const;

 private:
  size_t dim_;
  size_t bins_;
};

}  // namespace cdbtune::rl

#endif  // CDBTUNE_RL_QLEARNING_H_
