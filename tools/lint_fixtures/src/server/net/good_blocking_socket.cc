// Lint fixture (never compiled): the same raw socket traffic as
// bad_blocking_socket.cc, but inside src/server/net/ — with src/server/io
// one of the two sanctioned homes of socket I/O — so the blocking-socket
// rule must stay silent here.
#include <sys/socket.h>

namespace cdbtune::server::net {

int PhoneHomeFixture(const char* payload, int len) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (::connect(fd, nullptr, 0) != 0) return -1;
  return static_cast<int>(::send(fd, payload, len, 0));
}

}  // namespace cdbtune::server::net
