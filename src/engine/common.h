#ifndef CDBTUNE_ENGINE_COMMON_H_
#define CDBTUNE_ENGINE_COMMON_H_

#include <cstdint>

namespace cdbtune::engine {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFF;

/// Fixed page size of the mini engine (InnoDB's default).
inline constexpr size_t kPageSize = 16 * 1024;

/// Fixed-size records: 8-byte key + payload.
inline constexpr size_t kRecordPayload = 104;
inline constexpr size_t kRecordSize = 8 + kRecordPayload;

/// Nanoseconds-resolution virtual timestamp.
using VirtualNanos = uint64_t;

/// Deterministic virtual clock. The mini engine executes real data-structure
/// work (hash lookups, page splits, log appends) but charges device and CPU
/// latencies here instead of sleeping, so a "150-second" stress test takes
/// milliseconds of wall time and produces identical numbers on every run.
class VirtualClock {
 public:
  VirtualNanos now() const { return now_ns_; }
  void Advance(VirtualNanos delta_ns) { now_ns_ += delta_ns; }
  double seconds() const { return static_cast<double>(now_ns_) * 1e-9; }
  void Reset() { now_ns_ = 0; }

 private:
  VirtualNanos now_ns_ = 0;
};

}  // namespace cdbtune::engine

#endif  // CDBTUNE_ENGINE_COMMON_H_
