#include "gtest/gtest.h"
#include "workload/generator.h"
#include "workload/workload.h"

namespace cdbtune::workload {
namespace {

TEST(WorkloadSpecTest, FactoriesMatchPaperSetups) {
  WorkloadSpec ro = SysbenchReadOnly();
  EXPECT_DOUBLE_EQ(ro.read_fraction, 1.0);
  EXPECT_EQ(ro.client_threads, 1500);  // Paper: 1500 Sysbench threads.
  EXPECT_NEAR(ro.data_size_gb, 8.5, 1e-9);

  WorkloadSpec wo = SysbenchWriteOnly();
  EXPECT_DOUBLE_EQ(wo.read_fraction, 0.0);

  WorkloadSpec tpcc = Tpcc();
  EXPECT_EQ(tpcc.client_threads, 32);  // Paper: 32 connections.
  EXPECT_NEAR(tpcc.data_size_gb, 12.8, 1e-9);

  WorkloadSpec tpch = Tpch();
  EXPECT_GT(tpch.sort_heavy_fraction, 0.5);
  EXPECT_NEAR(tpch.data_size_gb, 16.0, 1e-9);

  WorkloadSpec ycsb = Ycsb();
  EXPECT_EQ(ycsb.client_threads, 50);  // Paper: 50 YCSB threads.
  EXPECT_GT(ycsb.access_skew, 0.5);
  EXPECT_NEAR(ycsb.data_size_gb, 35.0, 1e-9);
}

TEST(WorkloadSpecTest, NamesAreStable) {
  EXPECT_STREQ(WorkloadTypeName(WorkloadType::kSysbenchReadWrite),
               "Sysbench-RW");
  EXPECT_STREQ(WorkloadTypeName(WorkloadType::kTpcc), "TPC-C");
  EXPECT_EQ(MakeWorkload(WorkloadType::kYcsb).name, "YCSB");
}

TEST(WorkloadSpecTest, DistanceIsZeroToSelfAndSymmetric) {
  WorkloadSpec a = SysbenchReadWrite();
  WorkloadSpec b = Tpch();
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
  EXPECT_NEAR(a.DistanceTo(b), b.DistanceTo(a), 1e-12);
  EXPECT_GT(a.DistanceTo(b), 0.0);
}

TEST(WorkloadSpecTest, SimilarWorkloadsAreCloser) {
  WorkloadSpec rw = SysbenchReadWrite();
  WorkloadSpec ro = SysbenchReadOnly();
  WorkloadSpec tpch = Tpch();
  // RW is closer to RO (same scale OLTP) than to TPC-H (OLAP).
  EXPECT_LT(rw.DistanceTo(ro), rw.DistanceTo(tpch));
}

class GeneratorMixTest : public ::testing::TestWithParam<WorkloadType> {};

TEST_P(GeneratorMixTest, OperationMixMatchesSpec) {
  WorkloadSpec spec = MakeWorkload(GetParam());
  OperationGenerator gen(spec, 1'000'000, util::Rng(7));
  int reads = 0, scans = 0, writes = 0, inserts = 0, commits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Operation op = gen.Next();
    switch (op.kind) {
      case Operation::Kind::kPointRead:
        ++reads;
        break;
      case Operation::Kind::kRangeScan:
        ++reads;
        ++scans;
        break;
      case Operation::Kind::kUpdate:
        ++writes;
        break;
      case Operation::Kind::kInsert:
        ++writes;
        ++inserts;
        break;
    }
    if (op.commit_after) ++commits;
  }
  double read_frac = static_cast<double>(reads) / n;
  EXPECT_NEAR(read_frac, spec.read_fraction, 0.03) << spec.name;
  if (reads > 500) {
    EXPECT_NEAR(static_cast<double>(scans) / reads, spec.scan_fraction, 0.03)
        << spec.name;
  }
  if (writes > 500) {
    EXPECT_NEAR(static_cast<double>(inserts) / writes, spec.insert_fraction,
                0.04)
        << spec.name;
  }
  // Commits should appear roughly every ops_per_txn operations.
  double ops_per_txn = static_cast<double>(n) / std::max(1, commits);
  EXPECT_NEAR(ops_per_txn, spec.ops_per_txn, spec.ops_per_txn * 0.35)
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GeneratorMixTest,
    ::testing::Values(WorkloadType::kSysbenchReadOnly,
                      WorkloadType::kSysbenchWriteOnly,
                      WorkloadType::kSysbenchReadWrite, WorkloadType::kTpcc,
                      WorkloadType::kTpch, WorkloadType::kYcsb));

TEST(GeneratorTest, KeysStayInHotSet) {
  WorkloadSpec spec = Ycsb();  // working set 6 of 35 GB.
  const uint64_t key_space = 100000;
  OperationGenerator gen(spec, key_space, util::Rng(9));
  uint64_t hot_bound = static_cast<uint64_t>(
      key_space * (spec.working_set_gb / spec.data_size_gb));
  for (int i = 0; i < 5000; ++i) {
    Operation op = gen.Next();
    if (op.kind == Operation::Kind::kPointRead ||
        op.kind == Operation::Kind::kUpdate) {
      EXPECT_LT(op.key, hot_bound + 1);
    }
  }
}

TEST(GeneratorTest, SkewConcentratesAccesses) {
  WorkloadSpec spec = Ycsb();
  OperationGenerator gen(spec, 100000, util::Rng(10));
  int head = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    Operation op = gen.Next();
    if (op.kind != Operation::Kind::kInsert) {
      ++total;
      if (op.key < 2000) ++head;
    }
  }
  // Zipf(0.85) concentrates far more than the uniform 2000/~17000 share.
  EXPECT_GT(static_cast<double>(head) / total, 0.3);
}

TEST(GeneratorTest, InsertKeysAreFreshAndMonotonic) {
  WorkloadSpec spec = SysbenchWriteOnly();
  OperationGenerator gen(spec, 1000, util::Rng(11));
  uint64_t last = 0;
  bool first = true;
  for (int i = 0; i < 5000; ++i) {
    Operation op = gen.Next();
    if (op.kind == Operation::Kind::kInsert) {
      EXPECT_GE(op.key, 1000u);  // Beyond the existing key space.
      if (!first) {
        EXPECT_GT(op.key, last);
      }
      last = op.key;
      first = false;
    }
  }
  EXPECT_FALSE(first) << "write-only workload generated no inserts";
}

TEST(TraceTest, RecordAndReplayReproducesExactly) {
  WorkloadSpec spec = SysbenchReadWrite();
  OperationGenerator gen(spec, 5000, util::Rng(12));
  Trace trace = RecordTrace(gen, 100);
  EXPECT_EQ(trace.operations.size(), 100u);
  EXPECT_EQ(trace.spec.type, WorkloadType::kReplay);

  TraceReplayer replay(&trace);
  for (int lap = 0; lap < 2; ++lap) {
    for (size_t i = 0; i < trace.operations.size(); ++i) {
      Operation op = replay.Next();
      EXPECT_EQ(op.key, trace.operations[i].key);
      EXPECT_EQ(static_cast<int>(op.kind),
                static_cast<int>(trace.operations[i].kind));
    }
  }
}

TEST(TraceTest, ReplayerWrapsAround) {
  WorkloadSpec spec = SysbenchReadOnly();
  OperationGenerator gen(spec, 100, util::Rng(13));
  Trace trace = RecordTrace(gen, 7);
  TraceReplayer replay(&trace);
  for (int i = 0; i < 7; ++i) replay.Next();
  EXPECT_EQ(replay.position(), 0u);
}

}  // namespace
}  // namespace cdbtune::workload
