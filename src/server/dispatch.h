#ifndef CDBTUNE_SERVER_DISPATCH_H_
#define CDBTUNE_SERVER_DISPATCH_H_

#include <string>

#include "server/tuning_server.h"

namespace cdbtune::server {

/// Executes one protocol request line against `server` and returns the
/// response line ("OK ..." or "ERR ..."). Sets `*shutdown` when the line was
/// a SHUTDOWN request (the transport decides what shutting down means — the
/// socket server drains; the in-process driver just stops reading).
///
/// Verbs:
///   PING
///   OPEN   [engine=sim|mini] [workload=sysbench_rw|...] [seed=N] [steps=N]
///          [ram_gb=X] [disk_gb=X] [rows=N] [stress_s=X]
///   STEP   id=N [n=K]           — K tuning steps (default 1)
///   ROUND  [n=K]                — K concurrent all-session rounds
///   TRAIN  n=K                  — merge experiences + K gradient steps
///   STATUS [id=N]               — one session, or a summary of all
///   BEST_CONFIG id=N            — knobs differing from the engine default
///   CLOSE  id=N                 — finish session, deploy best config
///   SHUTDOWN
std::string DispatchLine(TuningServer& server, const std::string& line,
                         bool* shutdown);

}  // namespace cdbtune::server

#endif  // CDBTUNE_SERVER_DISPATCH_H_
