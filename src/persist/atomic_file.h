#ifndef CDBTUNE_PERSIST_ATOMIC_FILE_H_
#define CDBTUNE_PERSIST_ATOMIC_FILE_H_

#include <string>
#include <vector>

#include "persist/chunk.h"
#include "util/status.h"

namespace cdbtune::persist {

/// Reads the whole file into a string. kNotFound when it does not exist.
util::StatusOr<std::string> ReadFile(const std::string& path);

/// Crash-safe whole-file write: write to `<path>.tmp.<pid>`, fsync the file,
/// rename over `path`, fsync the directory. A crash at any point leaves
/// either the old file or the new one — never a torn mix.
util::Status AtomicWriteFile(const std::string& path,
                             std::string_view contents);

/// One generation skipped during a fallback load, and why.
struct DroppedGeneration {
  std::string path;
  std::string error;
};

/// Outcome of CheckpointStore::Load: the parsed newest loadable generation
/// plus a record of every newer generation that had to be dropped.
struct LoadedCheckpoint {
  ChunkFile file;
  std::string path;           // Which generation actually loaded.
  int generation = 0;         // 0 = newest.
  std::vector<DroppedGeneration> dropped;
};

/// Rotating K-generation checkpoint store: `path` is the newest checkpoint,
/// `path.1` the previous one, ... `path.<keep-1>` the oldest retained.
/// Write() atomically publishes a new generation and shifts the others down;
/// Load() walks newest → oldest, CRC-validating each, and returns the first
/// sound one along with the list of corrupt generations it skipped — the
/// torn-checkpoint recovery path.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string path, int keep_generations = 3);

  /// Renders `writer` and publishes it as the newest generation.
  util::Status Write(const ChunkWriter& writer) const;

  /// Newest parseable generation; kNotFound when no generation exists,
  /// kDataLoss when every existing generation is corrupt. Skipped
  /// generations are logged and reported in `dropped`.
  util::StatusOr<LoadedCheckpoint> Load() const;

  /// Path of generation `g` (0 = newest).
  std::string GenerationPath(int g) const;
  int keep_generations() const { return keep_generations_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int keep_generations_;
};

}  // namespace cdbtune::persist

#endif  // CDBTUNE_PERSIST_ATOMIC_FILE_H_
